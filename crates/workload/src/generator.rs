use crate::spec::{Program, WorkloadConfig};
use crate::uop::{Uop, UopKind};
use perconf_bpred::{digest_value, Snapshot, SnapshotError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;

// Kept at half the hardware prefetcher's stream count so that correct-
// and wrong-path streams together still fit its tracking table.
const STREAM_COUNT: usize = 8;
const MAX_DEP_DISTANCE: u32 = 64;

/// Deterministic, infinite generator of one benchmark's uop stream.
///
/// The dynamic branch stream walks the workload's control-flow *paths*
/// (see [`Program`]): a path is selected by its Zipf frequency, its
/// branch sites are visited in order (with non-branch uops in
/// between), then a new path is drawn. Repeating paths are what give
/// the global history register realistic, learnable structure.
///
/// Correct-path uops come from [`next_uop`](Self::next_uop) (also
/// available through the [`Iterator`] impl); wrong-path filler fetched
/// past a mispredicted branch comes from
/// [`next_wrong_path`](Self::next_wrong_path) and is drawn from an
/// **independent RNG stream**, so the correct-path sequence is
/// identical no matter how much wrong-path work a particular simulator
/// configuration fetched.
///
/// # Examples
///
/// ```
/// use perconf_workload::{spec2000_config, WorkloadGenerator};
///
/// let cfg = spec2000_config("gzip").unwrap();
/// let a: Vec<_> = WorkloadGenerator::new(&cfg).take(100).collect();
/// let b: Vec<_> = WorkloadGenerator::new(&cfg).take(100).collect();
/// assert_eq!(a, b); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    cfg: WorkloadConfig,
    program: Program,
    rng: SmallRng,
    wp_rng: SmallRng,
    history: u64,
    queue: VecDeque<Uop>,
    streams: [u64; STREAM_COUNT],
    wp_streams: [u64; STREAM_COUNT],
    uops_since_load: u32,
    emitted: u64,
    path: usize,
    path_pos: usize,
    path_repeats_left: u32,
}

/// Range of times a selected path is re-executed back to back before a
/// new path is drawn. Repetition is what makes the global history
/// structured the way loops make real programs' histories structured —
/// without it, history-indexed predictors face an unlearnably large
/// pattern space.
const PATH_REPEAT: std::ops::RangeInclusive<u32> = 4..=16;

impl WorkloadGenerator {
    /// Builds a generator for the given workload configuration.
    #[must_use]
    pub fn new(cfg: &WorkloadConfig) -> Self {
        let program = Program::build(cfg);
        let mut streams = [0u64; STREAM_COUNT];
        let mut wp_streams = [0u64; STREAM_COUNT];
        let stride = (cfg.working_set / STREAM_COUNT as u64).max(4096);
        for (i, s) in streams.iter_mut().enumerate() {
            *s = i as u64 * stride;
        }
        for (i, s) in wp_streams.iter_mut().enumerate() {
            *s = i as u64 * stride + 2048;
        }
        Self {
            cfg: cfg.clone(),
            program,
            rng: SmallRng::seed_from_u64(cfg.seed),
            wp_rng: SmallRng::seed_from_u64(cfg.seed ^ 0xBAD0_7A7E),
            history: 0,
            queue: VecDeque::new(),
            streams,
            wp_streams,
            uops_since_load: MAX_DEP_DISTANCE,
            emitted: 0,
            path: 0,
            path_pos: usize::MAX, // force a fresh path draw
            path_repeats_left: 0,
        }
    }

    /// The configuration this generator was built from.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// The program (sites + paths) being walked.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Global history of actual branch outcomes so far
    /// (bit 0 = most recent; 1 = taken).
    #[must_use]
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Total correct-path uops emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Returns the next correct-path uop.
    pub fn next_uop(&mut self) -> Uop {
        if self.queue.is_empty() {
            self.refill_block();
        }
        let u = self.queue.pop_front().expect("block refill produced uops");
        self.emitted += 1;
        if u.kind == UopKind::Load {
            self.uops_since_load = 0;
        } else {
            self.uops_since_load = (self.uops_since_load + 1).min(MAX_DEP_DISTANCE);
        }
        u
    }

    /// Returns the next wrong-path filler uop (consumed by the
    /// simulator while fetching past a mispredicted branch).
    ///
    /// Wrong-path conditional branches carry real site PCs so they
    /// exercise predictor and estimator lookups like real wrong-path
    /// code would, but the simulator never trains on them.
    pub fn next_wrong_path(&mut self) -> Uop {
        let mut rng = self.wp_rng.clone();
        let u = self.sample_wrong_path(&mut rng);
        self.wp_rng = rng;
        u
    }

    fn sample_wrong_path(&mut self, rng: &mut SmallRng) -> Uop {
        let x: f64 = rng.gen();
        let c = &self.cfg;
        if x < c.branch_frac {
            // A site from a random point of a random path.
            let p = rng.gen_range(0..self.program.paths.len());
            let path = &self.program.paths[p];
            let site = path[rng.gen_range(0..path.len())] as usize;
            let pc = self.program.sites[site].pc;
            let taken = rng.gen::<bool>();
            Uop::branch(pc, site as u32, taken, 1 + rng.gen_range(0..3))
        } else if x < c.branch_frac + c.load_frac {
            let addr = Self::mem_addr(&mut self.wp_streams, c, rng);
            Uop::mem(UopKind::Load, addr, Self::dep(c, rng))
        } else if x < c.branch_frac + c.load_frac + c.store_frac {
            let addr = Self::mem_addr(&mut self.wp_streams, c, rng);
            Uop::mem(UopKind::Store, addr, Self::dep(c, rng))
        } else if x < c.branch_frac + c.load_frac + c.store_frac + c.fp_frac {
            Uop::alu(UopKind::Fp, Self::dep(c, rng), Self::dep(c, rng))
        } else if x < c.branch_frac + c.load_frac + c.store_frac + c.fp_frac + c.mul_frac {
            Uop::alu(UopKind::IntMul, Self::dep(c, rng), 0)
        } else {
            Uop::alu(UopKind::IntAlu, Self::dep(c, rng), Self::dep(c, rng))
        }
    }

    fn next_site(&mut self) -> usize {
        let at_end = self.path_pos == usize::MAX
            || self.path_pos
                >= self.program.paths[self.path.min(self.program.paths.len() - 1)].len();
        if at_end {
            if self.path_repeats_left > 0 && self.path_pos != usize::MAX {
                // Loop: run the same path again.
                self.path_repeats_left -= 1;
            } else {
                self.path = self.program.path_zipf.sample(&mut self.rng) as usize;
                self.path_repeats_left = self.rng.gen_range(PATH_REPEAT);
            }
            self.path_pos = 0;
        }
        let site = self.program.paths[self.path][self.path_pos];
        self.path_pos += 1;
        site as usize
    }

    fn refill_block(&mut self) {
        // One block = `gap` plain uops followed by one branch.
        let mean_gap = ((1.0 - self.cfg.branch_frac) / self.cfg.branch_frac).max(1.0);
        let lo = (mean_gap / 2.0).floor() as u32;
        let hi = (mean_gap * 1.5).ceil() as u32;
        let gap = self.rng.gen_range(lo..=hi.max(lo + 1));

        let site_idx = self.next_site();
        let data_dependent = self.program.sites[site_idx].is_data_dependent() && gap >= 1;

        let mut since_load = self.uops_since_load;
        let plain = if data_dependent { gap - 1 } else { gap };
        for _ in 0..plain {
            let u = self.sample_plain();
            if u.kind == UopKind::Load {
                since_load = 0;
            } else {
                since_load = (since_load + 1).min(MAX_DEP_DISTANCE);
            }
            self.queue.push_back(u);
        }
        if data_dependent {
            // Data-dependent branches consume a freshly loaded value —
            // a pointer load that skips the L1-resident core region,
            // so branch resolution genuinely waits on the hierarchy.
            let addr = self.pointer_addr();
            self.queue.push_back(Uop::mem(UopKind::Load, addr, 0));
            since_load = 0;
        }

        let outcome = self.program.sites[site_idx].next_outcome(self.history, &mut self.rng);
        self.history = (self.history << 1) | u64::from(outcome);

        let src1 = if data_dependent {
            1 // the pointer load immediately before the branch
        } else if self.rng.gen::<f64>() < self.cfg.branch_on_load_frac {
            // Depend on the most recent load so resolution waits on it.
            since_load + 1
        } else {
            1 + self.rng.gen_range(0..3)
        };
        let pc = self.program.sites[site_idx].pc;
        self.queue
            .push_back(Uop::branch(pc, site_idx as u32, outcome, src1));
    }

    /// Address for a pointer load feeding a data-dependent branch:
    /// uniform over the whole working set (pointer chasing has no
    /// useful locality), so the load's latency reflects how much of
    /// the benchmark's data footprint fits in cache.
    fn pointer_addr(&mut self) -> u64 {
        let ws = self.cfg.working_set.max(64);
        self.rng.gen_range(0..(ws / 8).max(1)) * 8
    }

    fn sample_plain(&mut self) -> Uop {
        let denom = 1.0 - self.cfg.branch_frac;
        let x: f64 = self.rng.gen::<f64>() * denom.max(f64::MIN_POSITIVE);
        let (load_frac, store_frac, fp_frac, mul_frac) = (
            self.cfg.load_frac,
            self.cfg.store_frac,
            self.cfg.fp_frac,
            self.cfg.mul_frac,
        );
        if x < load_frac {
            let addr = Self::mem_addr(&mut self.streams, &self.cfg, &mut self.rng);
            // Load addresses mostly come from induction variables and
            // are ready at dispatch; only pointer-chasing loads wait.
            let src = if self.rng.gen::<f64>() < 0.75 {
                0
            } else {
                Self::dep(&self.cfg, &mut self.rng)
            };
            Uop::mem(UopKind::Load, addr, src)
        } else if x < load_frac + store_frac {
            let addr = Self::mem_addr(&mut self.streams, &self.cfg, &mut self.rng);
            let src = Self::dep(&self.cfg, &mut self.rng);
            Uop::mem(UopKind::Store, addr, src)
        } else if x < load_frac + store_frac + fp_frac {
            let s1 = Self::dep(&self.cfg, &mut self.rng);
            let s2 = Self::dep(&self.cfg, &mut self.rng);
            Uop::alu(UopKind::Fp, s1, s2)
        } else if x < load_frac + store_frac + fp_frac + mul_frac {
            let s1 = Self::dep(&self.cfg, &mut self.rng);
            Uop::alu(UopKind::IntMul, s1, 0)
        } else {
            let s1 = Self::dep(&self.cfg, &mut self.rng);
            let s2 = Self::dep(&self.cfg, &mut self.rng);
            Uop::alu(UopKind::IntAlu, s1, s2)
        }
    }

    fn mem_addr(streams: &mut [u64; STREAM_COUNT], c: &WorkloadConfig, rng: &mut SmallRng) -> u64 {
        if rng.gen::<f64>() < c.seq_frac {
            let i = rng.gen_range(0..STREAM_COUNT);
            let a = streams[i];
            streams[i] = (streams[i] + 8) % c.working_set.max(64);
            a
        } else {
            // Non-sequential accesses follow a two-level locality
            // model: most hit a small L1-resident core, a further
            // slice stays within the hot region, and the remainder
            // roams the whole working set.
            let ws = c.working_set.max(64);
            let core = 8 * 1024u64.min(ws);
            let hot = (ws / 64).clamp(8 * 1024, ws);
            let r: f64 = rng.gen();
            let region = if r < 0.75 * c.hot_frac {
                core
            } else if r < c.hot_frac {
                hot
            } else {
                ws
            };
            rng.gen_range(0..(region / 8).max(1)) * 8
        }
    }

    fn dep(c: &WorkloadConfig, rng: &mut SmallRng) -> u32 {
        // Geometric-ish dependence distance around `dep_mean`; 0 means
        // no dependence. Distances are kept short so typical code forms
        // deep dependence chains — that is what delays branch
        // resolution past dispatch and lets wrong-path work issue, as
        // on real machines.
        if rng.gen::<f64>() < 0.20 {
            return 0;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let d = 1.0 + (-u.ln()) * (c.dep_mean - 1.0).max(0.1);
        (d as u32).clamp(1, MAX_DEP_DISTANCE)
    }
}

impl Iterator for WorkloadGenerator {
    type Item = Uop;

    fn next(&mut self) -> Option<Uop> {
        Some(self.next_uop())
    }
}

/// Snapshotting captures every piece of mutable cursor state — both RNG
/// streams, the refill queue, the stream pointers, the path cursor, and
/// the per-site behaviour state inside `program.sites` (loop counters,
/// phase timers, pattern positions). The static program structure
/// (paths, Zipf tables, site frequencies) is *not* saved: it is a pure
/// function of the config, and restore targets a generator already
/// built from the same config — which is validated, so a snapshot can
/// never silently resume under the wrong workload.
impl Snapshot for WorkloadGenerator {
    fn save_state(&self) -> Value {
        Value::Object(vec![
            ("cfg".into(), self.cfg.to_value()),
            ("rng".into(), self.rng.state().to_value()),
            ("wp_rng".into(), self.wp_rng.state().to_value()),
            ("history".into(), self.history.to_value()),
            ("queue".into(), self.queue.to_value()),
            ("streams".into(), self.streams.to_value()),
            ("wp_streams".into(), self.wp_streams.to_value()),
            ("uops_since_load".into(), self.uops_since_load.to_value()),
            ("emitted".into(), self.emitted.to_value()),
            ("path".into(), self.path.to_value()),
            ("path_pos".into(), self.path_pos.to_value()),
            (
                "path_repeats_left".into(),
                self.path_repeats_left.to_value(),
            ),
            ("sites".into(), self.program.sites.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        let cfg: WorkloadConfig = serde::field(state, "cfg").map_err(SnapshotError::from_de)?;
        if cfg != self.cfg {
            return Err(SnapshotError::msg(format!(
                "generator snapshot was taken under workload `{}`, not `{}` (or configs differ)",
                cfg.name, self.cfg.name
            )));
        }
        let sites: Vec<crate::behavior::BranchSite> =
            serde::field(state, "sites").map_err(SnapshotError::from_de)?;
        if sites.len() != self.program.sites.len() {
            return Err(SnapshotError::msg(format!(
                "generator snapshot has {} sites, program has {}",
                sites.len(),
                self.program.sites.len()
            )));
        }
        fn f<T: Deserialize>(state: &Value, name: &str) -> Result<T, SnapshotError> {
            serde::field(state, name).map_err(SnapshotError::from_de)
        }
        self.rng = SmallRng::from_state(f(state, "rng")?);
        self.wp_rng = SmallRng::from_state(f(state, "wp_rng")?);
        self.history = f(state, "history")?;
        self.queue = f(state, "queue")?;
        self.streams = f(state, "streams")?;
        self.wp_streams = f(state, "wp_streams")?;
        self.uops_since_load = f(state, "uops_since_load")?;
        self.emitted = f(state, "emitted")?;
        self.path = f(state, "path")?;
        self.path_pos = f(state, "path_pos")?;
        self.path_repeats_left = f(state, "path_repeats_left")?;
        self.program.sites = sites;
        Ok(())
    }

    fn state_digest(&self) -> u64 {
        // The generator digests its full serialized state: it is only
        // consulted at checkpoint/verify intervals, never per cycle.
        digest_value(&self.save_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{spec2000, spec2000_config};

    fn gen(name: &str) -> WorkloadGenerator {
        WorkloadGenerator::new(&spec2000_config(name).unwrap())
    }

    #[test]
    fn branch_density_matches_config() {
        let mut g = gen("gcc");
        let n = 40_000;
        let branches = (0..n).filter(|_| g.next_uop().is_branch()).count();
        let frac = branches as f64 / n as f64;
        let target = g.config().branch_frac;
        assert!((frac - target).abs() < 0.02, "frac={frac} target={target}");
    }

    #[test]
    fn load_density_roughly_matches_config() {
        let mut g = gen("vpr");
        let n = 40_000;
        let loads = (0..n)
            .filter(|_| g.next_uop().kind == UopKind::Load)
            .count();
        let frac = loads as f64 / n as f64;
        assert!((frac - g.config().load_frac).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn wrong_path_consumption_does_not_perturb_correct_path() {
        let cfg = spec2000_config("twolf").unwrap();
        let mut a = WorkloadGenerator::new(&cfg);
        let mut b = WorkloadGenerator::new(&cfg);
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        for i in 0..5_000 {
            sa.push(a.next_uop());
            if i % 3 == 0 {
                // b interleaves wrong-path fetches
                for _ in 0..7 {
                    let _ = b.next_wrong_path();
                }
            }
            sb.push(b.next_uop());
        }
        assert_eq!(sa, sb);
    }

    #[test]
    fn history_tracks_branch_outcomes() {
        let mut g = gen("gzip");
        let mut outcomes = Vec::new();
        while outcomes.len() < 10 {
            let u = g.next_uop();
            if let Some(b) = u.branch {
                outcomes.push(b.taken);
            }
        }
        let h = g.history();
        for (i, &t) in outcomes.iter().rev().enumerate() {
            assert_eq!((h >> i) & 1 == 1, t, "history bit {i}");
        }
    }

    #[test]
    fn branch_stream_follows_paths() {
        let mut g = gen("bzip");
        // Collect the site sequence and verify it is a concatenation of
        // program paths (each path traversed in full, in order).
        let paths = g.program().paths.clone();
        let mut sites = Vec::new();
        while sites.len() < 200 {
            if let Some(b) = g.next_uop().branch {
                sites.push(b.site);
            }
        }
        let mut i = 0;
        let mut matched_paths = 0;
        'outer: while i + 12 < sites.len() {
            for p in &paths {
                if sites[i..].starts_with(p) {
                    i += p.len();
                    matched_paths += 1;
                    continue 'outer;
                }
            }
            panic!("site stream at {i} does not start with any path");
        }
        assert!(matched_paths > 5);
    }

    #[test]
    fn wrong_path_branches_use_real_site_pcs() {
        let mut g = gen("mcf");
        let pcs: std::collections::BTreeSet<u64> = g.program().sites.iter().map(|s| s.pc).collect();
        let mut seen = 0;
        for _ in 0..5_000 {
            let u = g.next_wrong_path();
            if let Some(b) = u.branch {
                assert!(pcs.contains(&b.pc));
                seen += 1;
            }
        }
        assert!(seen > 100);
    }

    #[test]
    fn mem_uops_have_addresses_within_working_set() {
        for cfg in spec2000() {
            let mut g = WorkloadGenerator::new(&cfg);
            for _ in 0..2_000 {
                let u = g.next_uop();
                if let Some(m) = u.mem {
                    assert!(m.addr < cfg.working_set, "{}: {:x}", cfg.name, m.addr);
                }
            }
        }
    }

    #[test]
    fn hot_region_concentrates_random_accesses() {
        let cfg = spec2000_config("vpr").unwrap(); // hot_frac 0.9
        let mut g = WorkloadGenerator::new(&cfg);
        let hot = cfg.working_set / 16;
        let mut in_hot = 0u32;
        let mut total = 0u32;
        for _ in 0..60_000 {
            let u = g.next_uop();
            if let Some(m) = u.mem {
                total += 1;
                if m.addr < hot {
                    in_hot += 1;
                }
            }
        }
        // seq accesses sweep the whole set; random ones are 90% hot.
        let frac = f64::from(in_hot) / f64::from(total);
        assert!(frac > 0.4, "hot frac = {frac}");
    }

    #[test]
    fn dependence_distances_bounded() {
        let mut g = gen("gap");
        for _ in 0..10_000 {
            let u = g.next_uop();
            assert!(u.src1 <= MAX_DEP_DISTANCE + 1);
            assert!(u.src2 <= MAX_DEP_DISTANCE);
        }
    }

    #[test]
    fn emitted_counter_advances() {
        let mut g = gen("eon");
        for _ in 0..100 {
            let _ = g.next_uop();
        }
        assert_eq!(g.emitted(), 100);
    }

    #[test]
    fn snapshot_resume_reproduces_the_stream() {
        let cfg = spec2000_config("twolf").unwrap();
        let mut a = WorkloadGenerator::new(&cfg);
        for _ in 0..7_777 {
            let _ = a.next_uop();
            let _ = a.next_wrong_path();
        }
        let snap = a.save_state();
        let digest = a.state_digest();

        // Restore into a fresh generator built from the same config.
        let mut b = WorkloadGenerator::new(&cfg);
        b.restore_state(&snap).unwrap();
        assert_eq!(b.state_digest(), digest);
        for _ in 0..5_000 {
            assert_eq!(a.next_uop(), b.next_uop());
            assert_eq!(a.next_wrong_path(), b.next_wrong_path());
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn snapshot_survives_json_round_trip() {
        let cfg = spec2000_config("gzip").unwrap();
        let mut a = WorkloadGenerator::new(&cfg);
        for _ in 0..3_000 {
            let _ = a.next_uop();
        }
        let json = serde_json::to_string(&a.save_state()).unwrap();
        let back = serde_json::from_str(&json).unwrap();
        let mut b = WorkloadGenerator::new(&cfg);
        b.restore_state(&back).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
        for _ in 0..2_000 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn restore_rejects_wrong_workload() {
        let mut a = WorkloadGenerator::new(&spec2000_config("gzip").unwrap());
        let snap = a.save_state();
        let mut b = WorkloadGenerator::new(&spec2000_config("mcf").unwrap());
        let err = b.restore_state(&snap).unwrap_err();
        assert!(err.to_string().contains("gzip"), "{err}");
        // `a` itself accepts its own snapshot.
        a.restore_state(&snap).unwrap();
    }

    #[test]
    fn digest_changes_as_the_stream_advances() {
        let mut g = gen("vpr");
        let d0 = g.state_digest();
        let _ = g.next_uop();
        assert_ne!(g.state_digest(), d0);
    }

    #[test]
    fn iterator_and_next_uop_agree() {
        let cfg = spec2000_config("bzip").unwrap();
        let a: Vec<_> = WorkloadGenerator::new(&cfg).take(500).collect();
        let mut g = WorkloadGenerator::new(&cfg);
        let b: Vec<_> = (0..500).map(|_| g.next_uop()).collect();
        assert_eq!(a, b);
    }
}
