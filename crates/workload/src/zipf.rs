use rand::Rng;

/// Zipf-distributed sampler over ranks `0..n`, used to give branch
/// sites a realistic skewed execution-frequency profile (a few hot
/// branches dominate the dynamic stream).
///
/// # Examples
///
/// ```
/// use perconf_workload::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 100);
/// // rank 0 is the most likely
/// assert!(z.mass(0) > z.mass(99));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`
    /// (`s = 0` → uniform; larger `s` → more skew).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    #[must_use]
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / f64::from(k).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if there are no ranks (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn mass(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draws a rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn masses_sum_to_one() {
        let z = Zipf::new(50, 1.2);
        let sum: f64 = (0..50).map(|r| z.mass(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.mass(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn hot_rank_dominates_samples() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut count0 = 0;
        for _ in 0..10_000 {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        // mass(0) ≈ 1/H(100) ≈ 0.193
        assert!(count0 > 1500 && count0 < 2500, "count0={count0}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
