use crate::behavior::{BehaviorSpec, BranchSite};
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The twelve SPECint2000 benchmark names used by the paper
/// (Table 2), in the paper's order.
pub const SPEC2000_NAMES: [&str; 12] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "link", "eon", "perlbmk", "gap", "vortex", "bzip",
    "twolf",
];

/// Zipf exponent of the path execution-frequency skew.
const PATH_ZIPF_S: f64 = 0.8;
/// Path length bounds (branch sites per path).
const PATH_LEN: std::ops::RangeInclusive<u32> = 4..=12;

/// A weighted mixture of branch behaviours. Behaviours are assigned to
/// sites by *stratified* allocation over each site's execution
/// frequency, so the dynamic behaviour mix matches the configured
/// weights even though site frequencies are heavily skewed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorMix {
    entries: Vec<(f64, BehaviorSpec)>,
}

impl BehaviorMix {
    /// Creates a mixture from `(weight, spec)` pairs. Weights are
    /// normalised internally.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or any weight is non-positive.
    #[must_use]
    pub fn new(entries: Vec<(f64, BehaviorSpec)>) -> Self {
        assert!(!entries.is_empty(), "mixture must have at least one entry");
        assert!(
            entries.iter().all(|&(w, _)| w > 0.0),
            "mixture weights must be positive"
        );
        Self { entries }
    }

    /// The `(weight, spec)` entries (weights as given, unnormalised).
    #[must_use]
    pub fn entries(&self) -> &[(f64, BehaviorSpec)] {
        &self.entries
    }

    /// Expected dynamic misprediction rate of the mixture under a
    /// well-trained predictor (weighted intrinsic rates). Used for
    /// calibration sanity checks only.
    #[must_use]
    pub fn expected_miss_rate(&self) -> f64 {
        let wsum: f64 = self.entries.iter().map(|&(w, _)| w).sum();
        self.entries
            .iter()
            .map(|&(w, s)| w * s.intrinsic_miss_rate())
            .sum::<f64>()
            / wsum
    }

    /// Assigns one behaviour spec per mass in `masses` (ordered from
    /// hottest to coldest site) so that each class's share of total
    /// mass matches its weight, using a greedy largest-deficit rule.
    ///
    /// *Hard* classes ([`BehaviorClass::is_hard`]) claim the hottest
    /// sites until they meet their mass quota; the remaining classes
    /// share the rest. This mirrors real programs, where
    /// mispredictions concentrate in a few notorious hot branches,
    /// and keeps the set of hard static sites small enough for
    /// PC-indexed estimator tables to learn.
    #[must_use]
    pub fn assign_specs(&self, masses: &[f64]) -> Vec<BehaviorSpec> {
        let grand_total: f64 = masses.iter().sum();
        let wsum: f64 = self.entries.iter().map(|&(w, _)| w).sum();
        let quota: Vec<f64> = self
            .entries
            .iter()
            .map(|&(w, _)| w / wsum * grand_total)
            .collect();
        let mut assigned = vec![0.0f64; self.entries.len()];
        let mut out = Vec::with_capacity(masses.len());
        let mut soft_total = 0.0;
        for &m in masses {
            // Hard classes first: hottest sites fill their quotas.
            let hard = (0..self.entries.len())
                .filter(|&i| self.entries[i].1.class().is_hard())
                .filter(|&i| assigned[i] + m / 2.0 < quota[i])
                .max_by(|&a, &b| (quota[a] - assigned[a]).total_cmp(&(quota[b] - assigned[b])));
            if let Some(i) = hard {
                assigned[i] += m;
                out.push(self.entries[i].1);
                continue;
            }
            // Remaining (easy) classes by largest deficit over the
            // mass seen so far, excluding what the hard classes took.
            soft_total += m;
            let soft_wsum: f64 = self
                .entries
                .iter()
                .filter(|e| !e.1.class().is_hard())
                .map(|&(w, _)| w)
                .sum();
            let mut best = 0;
            let mut best_deficit = f64::NEG_INFINITY;
            for (i, &(w, spec)) in self.entries.iter().enumerate() {
                if spec.class().is_hard() {
                    continue;
                }
                let deficit = w / soft_wsum.max(f64::MIN_POSITIVE) * soft_total - assigned[i];
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = i;
                }
            }
            assigned[best] += m;
            out.push(self.entries[best].1);
        }
        out
    }
}

/// The static structure of one synthetic benchmark: its branch sites
/// and the control-flow *paths* (repeating site sequences) the dynamic
/// stream walks.
///
/// Paths are what give the global branch history its realistic,
/// learnable structure: the same short sequences of branches recur, so
/// history-indexed predictors see a bounded set of patterns per site
/// instead of maximum-entropy noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Instantiated branch sites, indexed by site id.
    pub sites: Vec<BranchSite>,
    /// Control-flow paths: each is a sequence of site ids.
    pub paths: Vec<Vec<u32>>,
    /// Execution-frequency distribution over paths.
    pub path_zipf: Zipf,
    /// Per-site execution-frequency mass (sums to 1).
    pub site_freq: Vec<f64>,
}

impl Program {
    /// Builds the program implied by a workload configuration.
    /// Deterministic in the config (including its seed).
    #[must_use]
    pub fn build(cfg: &WorkloadConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_0001);
        let site_zipf = Zipf::new(cfg.sites, cfg.zipf_s);
        let n_paths = cfg.paths.max(1);
        let path_zipf = Zipf::new(n_paths, PATH_ZIPF_S);
        let paths: Vec<Vec<u32>> = (0..n_paths)
            .map(|_| {
                let len = rng.gen_range(PATH_LEN);
                (0..len).map(|_| site_zipf.sample(&mut rng)).collect()
            })
            .collect();

        let mut site_freq = vec![0.0f64; cfg.sites as usize];
        for (p, path) in paths.iter().enumerate() {
            let m = path_zipf.mass(p) / path.len() as f64;
            for &s in path {
                site_freq[s as usize] += m;
            }
        }

        // Stratified behaviour assignment over measured frequency.
        let mut order: Vec<usize> = (0..cfg.sites as usize).collect();
        order.sort_by(|&a, &b| site_freq[b].total_cmp(&site_freq[a]).then(a.cmp(&b)));
        let masses: Vec<f64> = order.iter().map(|&i| site_freq[i]).collect();
        let specs = cfg.mix.assign_specs(&masses);
        let mut chosen = vec![None; cfg.sites as usize];
        for (rank, &site) in order.iter().enumerate() {
            chosen[site] = Some(specs[rank]);
        }
        let sites = chosen
            .into_iter()
            .enumerate()
            .map(|(id, spec)| {
                BranchSite::instantiate(id as u32, spec.expect("every site assigned"), &mut rng)
            })
            .collect();

        Self {
            sites,
            paths,
            path_zipf,
            site_freq,
        }
    }
}

/// Full configuration of one synthetic benchmark workload.
///
/// Instances for the paper's twelve benchmarks come from [`spec2000`];
/// custom workloads can be built directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Benchmark name (one of [`SPEC2000_NAMES`] for the calibrated set).
    pub name: String,
    /// RNG seed; the generated uop stream is a pure function of the
    /// config including this seed.
    pub seed: u64,
    /// Number of static branch sites.
    pub sites: u32,
    /// Number of control-flow paths (repeating site sequences).
    pub paths: u32,
    /// Zipf exponent used when drawing sites into paths.
    pub zipf_s: f64,
    /// Fraction of uops that are conditional branches.
    pub branch_frac: f64,
    /// Fraction of uops that are loads.
    pub load_frac: f64,
    /// Fraction of uops that are stores.
    pub store_frac: f64,
    /// Fraction of uops that are floating-point.
    pub fp_frac: f64,
    /// Fraction of uops that are long-latency integer (multiply class).
    pub mul_frac: f64,
    /// Fraction of memory accesses that follow sequential streams
    /// (prefetcher-friendly); the rest are distributed over the
    /// working set.
    pub seq_frac: f64,
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Fraction of non-sequential accesses confined to the hot region
    /// (working_set / 16); models temporal locality.
    pub hot_frac: f64,
    /// Mean register-dependence distance in uops.
    pub dep_mean: f64,
    /// Fraction of branches whose source operand is the most recent
    /// load (delaying branch resolution — pointer-chasing codes).
    pub branch_on_load_frac: f64,
    /// Behaviour mixture across branch sites.
    pub mix: BehaviorMix,
    /// The paper's Table 2 "branch mispredicts / 1000 uops" value this
    /// config was calibrated against (documentation only).
    pub target_mpku: f64,
}

impl WorkloadConfig {
    /// Instantiates the static branch sites of this workload.
    #[must_use]
    pub fn build_sites(&self) -> Vec<BranchSite> {
        Program::build(self).sites
    }

    /// Builds the full program (sites + paths).
    #[must_use]
    pub fn build_program(&self) -> Program {
        Program::build(self)
    }
}

fn mix(entries: Vec<(f64, BehaviorSpec)>) -> BehaviorMix {
    BehaviorMix::new(entries)
}

fn biased(p: f64) -> BehaviorSpec {
    BehaviorSpec::Biased { p_taken: p }
}
fn lp(mean_trip: u32) -> BehaviorSpec {
    BehaviorSpec::Loop { mean_trip }
}
fn lin(noise: f64) -> BehaviorSpec {
    BehaviorSpec::LinearHistory { taps: 5, noise }
}
fn xor(noise: f64) -> BehaviorSpec {
    BehaviorSpec::XorHistory { noise }
}
fn rnd(p: f64) -> BehaviorSpec {
    BehaviorSpec::Random { p_taken: p }
}
fn ph(mean_stable: u32, mean_chaotic: u32) -> BehaviorSpec {
    BehaviorSpec::Phased {
        mean_stable,
        mean_chaotic,
    }
}
fn lt(noise: f64) -> BehaviorSpec {
    BehaviorSpec::LongHistory { noise }
}
fn pd(period: u32) -> BehaviorSpec {
    BehaviorSpec::Periodic {
        period,
        noise: 0.02,
    }
}

/// Builds a benchmark mixture from a target per-branch misprediction
/// rate, distributing the rate across behaviour classes in fixed
/// shares using *empirically measured* per-class misprediction rates
/// under the baseline bimodal–gshare hybrid (see `DESIGN.md`). The
/// share split keeps ~84% of mispredictions in hard, clustered
/// contexts — matching the concentration real traces exhibit and that
/// the paper's coverage numbers imply — with the remainder as
/// irreducible noise on strongly biased branches.
fn standard_mix(rate: f64, trip: u32, ph_stable: u32, pd_period: u32) -> BehaviorMix {
    // Empirical per-class misprediction rates (measured via the
    // calibrate example at 1.5M uops per benchmark).
    const E_LIN: f64 = 0.10;
    const E_XOR: f64 = 0.22;
    const E_PD: f64 = 0.22;
    const E_RND: f64 = 0.50;
    const E_LT: f64 = 0.50;
    let e_loop = 1.2 / f64::from(trip.max(2));
    let e_ph = (18.4 / (f64::from(ph_stable) + 16.0)).min(0.45);

    // Shares of the misprediction budget per class.
    let w_loop = 0.10 * rate / e_loop;
    let w_lin = 0.08 * rate / E_LIN;
    let w_xor = 0.08 * rate / E_XOR;
    let w_ph = 0.30 * rate / e_ph;
    let w_pd = 0.16 * rate / E_PD;
    let w_rnd = 0.08 * rate / E_RND;
    let w_lt = 0.04 * rate / E_LT;
    let used = w_loop + w_lin + w_xor + w_ph + w_pd + w_rnd + w_lt;
    assert!(used < 0.9, "misprediction budget too large for the mix");
    let w_b = 1.0 - used;
    // The biased bulk carries the remaining 16% of the budget as noise.
    let p_taken = (1.0 - 0.16 * rate / w_b).clamp(0.95, 0.9995);

    mix(vec![
        (w_b, biased(p_taken)),
        (w_loop, lp(trip)),
        (w_lin, lin(0.008)),
        (w_xor, xor(0.008)),
        (w_ph, ph(ph_stable, 16)),
        (w_pd, pd(pd_period)),
        (w_rnd, rnd(0.45)),
        (w_lt, lt(0.02)),
    ])
}

/// Returns the calibrated configuration for one SPECint2000 benchmark
/// name, or `None` for an unknown name.
///
/// # Examples
///
/// ```
/// let gcc = perconf_workload::spec2000_config("gcc").unwrap();
/// assert_eq!(gcc.name, "gcc");
/// assert!(perconf_workload::spec2000_config("nope").is_none());
/// ```
#[must_use]
pub fn spec2000_config(name: &str) -> Option<WorkloadConfig> {
    spec2000().into_iter().find(|c| c.name == name)
}

/// Returns the twelve calibrated SPECint2000 workload configurations in
/// the paper's Table 2 order.
///
/// Each mixture was chosen so its expected misprediction rate under a
/// good hybrid predictor, times the branch density, lands near the
/// paper's "branch mispredicts / 1000 uops" column (`target_mpku`).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn spec2000() -> Vec<WorkloadConfig> {
    struct Base<'a> {
        name: &'a str,
        sites: u32,
        paths: u32,
        zipf_s: f64,
        branch_frac: f64,
        seq_frac: f64,
        working_set: u64,
        hot_frac: f64,
        branch_on_load_frac: f64,
        mix: BehaviorMix,
        target_mpku: f64,
    }
    let build = |b: Base| WorkloadConfig {
        name: b.name.to_owned(),
        seed: 0x9e37_79b9
            ^ b.name.len() as u64
            ^ (b.name.as_bytes()[0] as u64) << 8
            ^ (b.name.as_bytes()[1] as u64) << 16,
        sites: b.sites,
        paths: b.paths,
        zipf_s: b.zipf_s,
        branch_frac: b.branch_frac,
        load_frac: 0.22,
        store_frac: 0.10,
        fp_frac: if b.name == "eon" { 0.12 } else { 0.02 },
        mul_frac: 0.02,
        seq_frac: b.seq_frac,
        working_set: b.working_set,
        hot_frac: b.hot_frac,
        dep_mean: 2.5,
        branch_on_load_frac: b.branch_on_load_frac,
        mix: b.mix,
        target_mpku: b.target_mpku,
    };

    vec![
        build(Base {
            name: "gzip",
            sites: 400,
            paths: 100,
            zipf_s: 1.15,
            branch_frac: 0.15,
            seq_frac: 0.80,
            working_set: 8 << 20,
            hot_frac: 0.92,
            branch_on_load_frac: 0.20,
            mix: standard_mix(0.03538, 16, 48, 2),
            target_mpku: 5.2,
        }),
        build(Base {
            name: "vpr",
            sites: 600,
            paths: 150,
            zipf_s: 1.0,
            branch_frac: 0.15,
            seq_frac: 0.45,
            working_set: 2 << 20,
            hot_frac: 0.90,
            branch_on_load_frac: 0.30,
            mix: standard_mix(0.03860, 10, 32, 2),
            target_mpku: 6.6,
        }),
        build(Base {
            name: "gcc",
            sites: 2400,
            paths: 600,
            zipf_s: 0.9,
            branch_frac: 0.16,
            seq_frac: 0.55,
            working_set: 4 << 20,
            hot_frac: 0.90,
            branch_on_load_frac: 0.20,
            mix: standard_mix(0.00998, 25, 48, 3),
            target_mpku: 2.3,
        }),
        build(Base {
            name: "mcf",
            sites: 350,
            paths: 90,
            zipf_s: 1.0,
            branch_frac: 0.15,
            seq_frac: 0.10,
            working_set: 24 << 20,
            hot_frac: 0.40,
            branch_on_load_frac: 0.55,
            mix: standard_mix(0.07960, 8, 16, 2),
            target_mpku: 16.0,
        }),
        build(Base {
            name: "crafty",
            sites: 1200,
            paths: 300,
            zipf_s: 1.0,
            branch_frac: 0.15,
            seq_frac: 0.50,
            working_set: 2 << 20,
            hot_frac: 0.90,
            branch_on_load_frac: 0.25,
            mix: standard_mix(0.01463, 20, 40, 2),
            target_mpku: 3.4,
        }),
        build(Base {
            name: "link",
            sites: 800,
            paths: 200,
            zipf_s: 1.0,
            branch_frac: 0.15,
            seq_frac: 0.40,
            working_set: 3 << 20,
            hot_frac: 0.85,
            branch_on_load_frac: 0.30,
            mix: standard_mix(0.02255, 12, 36, 2),
            target_mpku: 4.6,
        }),
        build(Base {
            name: "eon",
            sites: 900,
            paths: 220,
            zipf_s: 1.0,
            branch_frac: 0.10,
            seq_frac: 0.60,
            working_set: 1 << 19,
            hot_frac: 0.95,
            branch_on_load_frac: 0.10,
            mix: standard_mix(0.00413, 50, 80, 3),
            target_mpku: 0.5,
        }),
        build(Base {
            name: "perlbmk",
            sites: 1500,
            paths: 380,
            zipf_s: 0.95,
            branch_frac: 0.14,
            seq_frac: 0.55,
            working_set: 1 << 20,
            hot_frac: 0.92,
            branch_on_load_frac: 0.15,
            mix: standard_mix(0.00360, 40, 80, 3),
            target_mpku: 0.7,
        }),
        build(Base {
            name: "gap",
            sites: 1000,
            paths: 250,
            zipf_s: 1.0,
            branch_frac: 0.14,
            seq_frac: 0.55,
            working_set: 2 << 20,
            hot_frac: 0.90,
            branch_on_load_frac: 0.20,
            mix: standard_mix(0.01074, 20, 60, 2),
            target_mpku: 1.7,
        }),
        build(Base {
            name: "vortex",
            sites: 1400,
            paths: 350,
            zipf_s: 0.95,
            branch_frac: 0.16,
            seq_frac: 0.50,
            working_set: 6 << 20,
            hot_frac: 0.90,
            branch_on_load_frac: 0.15,
            mix: standard_mix(0.00088, 100, 150, 3),
            target_mpku: 0.2,
        }),
        build(Base {
            name: "bzip",
            sites: 350,
            paths: 90,
            zipf_s: 1.15,
            branch_frac: 0.15,
            seq_frac: 0.80,
            working_set: 8 << 20,
            hot_frac: 0.92,
            branch_on_load_frac: 0.20,
            mix: standard_mix(0.00573, 40, 80, 3),
            target_mpku: 1.1,
        }),
        build(Base {
            name: "twolf",
            sites: 700,
            paths: 170,
            zipf_s: 1.0,
            branch_frac: 0.15,
            seq_frac: 0.45,
            working_set: 3 << 20,
            hot_frac: 0.88,
            branch_on_load_frac: 0.30,
            mix: standard_mix(0.03529, 10, 30, 2),
            target_mpku: 6.3,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BehaviorClass;

    #[test]
    fn twelve_benchmarks_in_paper_order() {
        let cfgs = spec2000();
        assert_eq!(cfgs.len(), 12);
        for (cfg, name) in cfgs.iter().zip(SPEC2000_NAMES) {
            assert_eq!(cfg.name, name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec2000_config("mcf").is_some());
        assert!(spec2000_config("swim").is_none());
    }

    #[test]
    fn expected_rates_track_paper_targets() {
        // The mixture's analytic expected miss rate, times branch
        // density, should land within 3x of the paper's MPKu column
        // (the budgeted builder uses empirical class rates, so the
        // intrinsic-rate estimate is only a loose lower-order check).
        for cfg in spec2000() {
            let mpku = cfg.mix.expected_miss_rate() * cfg.branch_frac * 1000.0;
            assert!(
                mpku > cfg.target_mpku / 3.0 && mpku < cfg.target_mpku * 3.0,
                "{}: analytic {:.2} vs target {:.2}",
                cfg.name,
                mpku,
                cfg.target_mpku
            );
        }
    }

    #[test]
    fn mcf_is_worst_and_vortex_best() {
        let rates: Vec<(String, f64)> = spec2000()
            .into_iter()
            .map(|c| {
                let r = c.mix.expected_miss_rate() * c.branch_frac;
                (c.name, r)
            })
            .collect();
        let max = rates.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let min = rates.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(max.0, "mcf");
        assert_eq!(min.0, "vortex");
    }

    #[test]
    fn program_paths_cover_sites_with_mass_one() {
        let cfg = spec2000_config("gcc").unwrap();
        let prog = cfg.build_program();
        assert_eq!(prog.sites.len(), cfg.sites as usize);
        assert_eq!(prog.paths.len(), cfg.paths as usize);
        let total: f64 = prog.site_freq.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
        for p in &prog.paths {
            assert!(p.len() >= 4 && p.len() <= 12);
            assert!(p.iter().all(|&s| s < cfg.sites));
        }
    }

    #[test]
    fn stratified_assignment_matches_weights_in_mass() {
        let cfg = spec2000_config("gcc").unwrap();
        let prog = cfg.build_program();
        // Mass share of the Biased class should be close to the
        // biased entry's weight share in the built mixture.
        let wsum: f64 = cfg.mix.entries().iter().map(|&(w, _)| w).sum();
        let want: f64 = cfg
            .mix
            .entries()
            .iter()
            .filter(|(_, s)| s.class() == BehaviorClass::Biased)
            .map(|&(w, _)| w)
            .sum::<f64>()
            / wsum;
        let biased_mass: f64 = prog
            .sites
            .iter()
            .filter(|s| s.spec.class() == BehaviorClass::Biased)
            .map(|s| prog.site_freq[s.id as usize])
            .sum();
        assert!(
            (biased_mass - want).abs() < 0.05,
            "biased mass = {biased_mass}, want ≈ {want}"
        );
    }

    #[test]
    fn assign_specs_matches_weights_on_uniform_mass() {
        let m = BehaviorMix::new(vec![(0.5, biased(0.99)), (0.5, rnd(0.5))]);
        let specs = m.assign_specs(&vec![1.0; 100]);
        let biased_count = specs
            .iter()
            .filter(|s| s.class() == BehaviorClass::Biased)
            .count();
        assert_eq!(biased_count, 50);
    }

    #[test]
    fn hard_classes_take_the_hottest_sites() {
        let m = BehaviorMix::new(vec![(0.9, biased(0.99)), (0.1, rnd(0.5))]);
        // Masses descending: hottest first.
        let masses: Vec<f64> = (0..100).map(|i| 1.0 / f64::from(i + 1)).collect();
        let specs = m.assign_specs(&masses);
        // The very hottest site must be the hard (Random) class, which
        // claims hot sites until its 10% mass quota fills.
        assert_eq!(specs[0].class(), BehaviorClass::Random);
        // And the cold tail is all biased.
        assert!(specs[60..]
            .iter()
            .all(|s| s.class() == BehaviorClass::Biased));
    }

    #[test]
    fn build_program_is_deterministic() {
        let cfg = spec2000_config("vpr").unwrap();
        assert_eq!(cfg.build_program(), cfg.build_program());
    }

    #[test]
    fn seeds_differ_across_benchmarks() {
        let cfgs = spec2000();
        for i in 0..cfgs.len() {
            for j in i + 1..cfgs.len() {
                assert_ne!(
                    cfgs[i].seed, cfgs[j].seed,
                    "{} vs {}",
                    cfgs[i].name, cfgs[j].name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_panics() {
        let _ = BehaviorMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weight_panics() {
        let _ = BehaviorMix::new(vec![(0.0, biased(0.99))]);
    }

    #[test]
    fn standard_mix_budget_is_monotone_in_rate() {
        let lo = standard_mix(0.005, 20, 40, 2);
        let hi = standard_mix(0.05, 20, 40, 2);
        assert!(hi.expected_miss_rate() > lo.expected_miss_rate());
    }

    #[test]
    #[should_panic(expected = "budget too large")]
    fn standard_mix_rejects_absurd_rates() {
        let _ = standard_mix(0.9, 4, 16, 2);
    }
}
