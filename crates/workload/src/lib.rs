//! Synthetic workload substrate for the HPCA 2004 perceptron
//! confidence-estimation reproduction.
//!
//! The paper evaluates on proprietary Intel "LIT" traces of the
//! SPECint2000 benchmarks, which are not available. This crate replaces
//! them with a **calibrated synthetic workload generator**: each of the
//! twelve SPECint2000 benchmark names is modelled as a static program of
//! branch *sites*, each site drawing its outcomes from one of several
//! behaviour classes (strongly biased, loop exit, linearly
//! history-correlated, non-linearly (XOR) history-correlated, or
//! data-dependent random). The class mixture, branch density, memory
//! footprint and dependence structure of each benchmark are calibrated
//! so that the branch misprediction rate spectrum across benchmarks
//! approximates the paper's Table 2 (0.2–16 mispredicts per 1000 uops).
//!
//! What matters for confidence estimation is the *distribution of
//! branch predictability* — which branches a real predictor gets wrong,
//! and how that correlates with global history — not instruction-set
//! semantics, so this substitution preserves the behaviour the paper
//! measures (see `DESIGN.md` §2).
//!
//! The generator is an infinite, deterministic (seeded) iterator of
//! [`Uop`]s. Wrong-path uops (fetched past a mispredicted branch) are
//! synthesised from an independent RNG stream via
//! [`WorkloadGenerator::next_wrong_path`], so the correct-path stream is
//! bit-identical across simulator configurations — a prerequisite for
//! fair gating/no-gating comparisons.
//!
//! # Examples
//!
//! ```
//! use perconf_workload::{spec2000, WorkloadGenerator};
//!
//! let cfg = &spec2000()[2]; // gcc
//! let mut gen = WorkloadGenerator::new(cfg);
//! let branches = (0..10_000)
//!     .map(|_| gen.next_uop())
//!     .filter(|u| u.branch.is_some())
//!     .count();
//! assert!(branches > 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod generator;
mod spec;
mod trace;
mod uop;
mod zipf;

pub use behavior::{BehaviorClass, BehaviorSpec, BranchSite, LONG_TAP_MAX, LONG_TAP_MIN, MAX_TAP};
pub use generator::WorkloadGenerator;
pub use spec::{spec2000, spec2000_config, BehaviorMix, Program, WorkloadConfig, SPEC2000_NAMES};
pub use trace::{TraceReader, TraceWriter};
pub use uop::{Branch, MemRef, Uop, UopKind};
pub use zipf::Zipf;
