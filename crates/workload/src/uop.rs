use serde::{Deserialize, Serialize};

/// The functional-unit class of a micro-operation.
///
/// Latency and issue-port binding are decided by the pipeline
/// simulator; this enum only conveys what kind of work the uop is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UopKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer operation (multiply/divide class).
    IntMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Floating-point operation.
    Fp,
    /// Conditional branch (always carries a [`Branch`]).
    Branch,
}

impl UopKind {
    /// Returns `true` for loads and stores.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }
}

/// Conditional-branch payload of a [`Uop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Branch {
    /// Instruction address of the branch (used to index predictor and
    /// confidence-estimator tables).
    pub pc: u64,
    /// Static branch-site identifier within the workload.
    pub site: u32,
    /// Architectural (actual) outcome of this dynamic instance.
    pub taken: bool,
}

/// Memory reference payload of a load or store [`Uop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Byte address accessed.
    pub addr: u64,
}

/// One micro-operation of the synthetic trace.
///
/// Register dependences are encoded as *producer distances*: `src1`/
/// `src2` give how many uops earlier (in program order) the producing
/// uop appeared; `0` means "no dependence / long-ready".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Uop {
    /// Functional-unit class.
    pub kind: UopKind,
    /// Distance (in uops) to the first source producer; 0 = none.
    pub src1: u32,
    /// Distance (in uops) to the second source producer; 0 = none.
    pub src2: u32,
    /// Memory reference, present iff `kind.is_mem()`.
    pub mem: Option<MemRef>,
    /// Branch payload, present iff `kind == UopKind::Branch`.
    pub branch: Option<Branch>,
}

impl Uop {
    /// Creates a non-memory, non-branch uop.
    #[must_use]
    pub fn alu(kind: UopKind, src1: u32, src2: u32) -> Self {
        debug_assert!(!kind.is_mem() && kind != UopKind::Branch);
        Self {
            kind,
            src1,
            src2,
            mem: None,
            branch: None,
        }
    }

    /// Creates a load or store uop.
    #[must_use]
    pub fn mem(kind: UopKind, addr: u64, src1: u32) -> Self {
        debug_assert!(kind.is_mem());
        Self {
            kind,
            src1,
            src2: 0,
            mem: Some(MemRef { addr }),
            branch: None,
        }
    }

    /// Creates a conditional-branch uop.
    #[must_use]
    pub fn branch(pc: u64, site: u32, taken: bool, src1: u32) -> Self {
        Self {
            kind: UopKind::Branch,
            src1,
            src2: 0,
            mem: None,
            branch: Some(Branch { pc, site, taken }),
        }
    }

    /// Returns `true` if this is a conditional branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.branch.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_payloads() {
        let b = Uop::branch(0x40, 3, true, 2);
        assert!(b.is_branch());
        assert_eq!(b.kind, UopKind::Branch);
        assert_eq!(b.branch.unwrap().site, 3);
        assert!(b.branch.unwrap().taken);

        let l = Uop::mem(UopKind::Load, 0x1000, 1);
        assert_eq!(l.mem.unwrap().addr, 0x1000);
        assert!(!l.is_branch());

        let a = Uop::alu(UopKind::IntAlu, 1, 2);
        assert!(a.mem.is_none() && a.branch.is_none());
    }

    #[test]
    fn kind_classification() {
        assert!(UopKind::Load.is_mem());
        assert!(UopKind::Store.is_mem());
        assert!(!UopKind::Branch.is_mem());
        assert!(!UopKind::Fp.is_mem());
    }
}
