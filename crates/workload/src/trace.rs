//! Trace recording and replay.
//!
//! The paper's simulator is trace-driven ("long instruction traces").
//! This module provides the equivalent plumbing for the synthetic
//! workloads: dump any generator's correct-path uop stream to a
//! compact binary file with [`TraceWriter`], and feed it back to the
//! simulator (or any other consumer) with [`TraceReader`]. Replay is
//! bit-identical to live generation, so traces can be archived,
//! diffed and shared.
//!
//! # Format
//!
//! A 16-byte header (`magic`, version, record count) followed by
//! fixed-width 27-byte records, little-endian:
//!
//! ```text
//! kind: u8  src1: u32  src2: u32  payload: u64  aux: u64  flags: u8  seq_check: u8
//! ```
//!
//! `payload` is the memory address for loads/stores and the PC for
//! branches; `aux` carries the branch site id; `flags` bit 0 is the
//! branch outcome. `seq_check` is a rolling checksum byte that lets
//! the reader detect truncated or corrupted files early.
//!
//! # Examples
//!
//! ```no_run
//! use perconf_workload::{spec2000_config, TraceReader, TraceWriter, WorkloadGenerator};
//!
//! # fn main() -> std::io::Result<()> {
//! let cfg = spec2000_config("gcc").unwrap();
//! let mut gen = WorkloadGenerator::new(&cfg);
//! TraceWriter::record(&mut gen, 1_000_000, "gcc.trace")?;
//! let uops: Vec<_> = TraceReader::open("gcc.trace")?.collect::<Result<_, _>>()?;
//! assert_eq!(uops.len(), 1_000_000);
//! # Ok(())
//! # }
//! ```

use crate::generator::WorkloadGenerator;
use crate::uop::{Branch, MemRef, Uop, UopKind};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: [u8; 8] = *b"PERCONF1";
const RECORD_BYTES: usize = 27;

fn kind_to_u8(kind: UopKind) -> u8 {
    match kind {
        UopKind::IntAlu => 0,
        UopKind::IntMul => 1,
        UopKind::Load => 2,
        UopKind::Store => 3,
        UopKind::Fp => 4,
        UopKind::Branch => 5,
    }
}

fn kind_from_u8(v: u8) -> io::Result<UopKind> {
    Ok(match v {
        0 => UopKind::IntAlu,
        1 => UopKind::IntMul,
        2 => UopKind::Load,
        3 => UopKind::Store,
        4 => UopKind::Fp,
        5 => UopKind::Branch,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid uop kind {other}"),
            ))
        }
    })
}

fn checksum(bytes: &[u8]) -> u8 {
    bytes
        .iter()
        .fold(0x5Au8, |a, &b| a.wrapping_mul(31).wrapping_add(b))
}

/// Writes uop traces to disk.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    written: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path`, reserving space for the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        // lint: allow(output-atomicity) — streaming writer; `finish` patches the
        // header and the reader detects truncation via count + checksum
        Self::new(BufWriter::new(File::create(path)?))
    }

    /// Records `n` correct-path uops from `gen` into a new trace file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn record<P: AsRef<Path>>(gen: &mut WorkloadGenerator, n: u64, path: P) -> io::Result<u64> {
        let mut w = Self::create(path)?;
        for _ in 0..n {
            w.write_uop(&gen.next_uop())?;
        }
        w.finish()
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on any sink (file, `Cursor`, pipe), writing the
    /// header with a zero record-count placeholder.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        out.write_all(&0u64.to_le_bytes())?; // record count placeholder
        Ok(Self { out, written: 0 })
    }

    /// Appends one uop record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_uop(&mut self, uop: &Uop) -> io::Result<()> {
        let mut rec = [0u8; RECORD_BYTES];
        rec[0] = kind_to_u8(uop.kind);
        rec[1..5].copy_from_slice(&uop.src1.to_le_bytes());
        rec[5..9].copy_from_slice(&uop.src2.to_le_bytes());
        let (payload, aux, flags) = match (uop.mem, uop.branch) {
            (Some(m), None) => (m.addr, 0u64, 0u8),
            (None, Some(b)) => (b.pc, u64::from(b.site), u8::from(b.taken)),
            _ => (0, 0, 0),
        };
        rec[9..17].copy_from_slice(&payload.to_le_bytes());
        rec[17..25].copy_from_slice(&aux.to_le_bytes());
        rec[25] = flags;
        rec[26] = checksum(&rec[..26]);
        self.out.write_all(&rec)?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes buffered output without patching the header. For
    /// non-seekable sinks (pipes, network streams); the consumer must
    /// learn the record count out of band, since the header still
    /// carries the zero placeholder. Returns the final record count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish_streaming(mut self) -> io::Result<u64> {
        self.out.flush()?;
        Ok(self.written)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Flushes buffered output and patches the header's record count
    /// with the number of records actually written. Returns that final
    /// count. Without this (or [`TraceWriter::finish_streaming`] plus
    /// out-of-band bookkeeping) the header count stays at the zero
    /// placeholder and readers see an empty trace.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<u64> {
        self.out.seek(SeekFrom::Start(8))?;
        self.out.write_all(&self.written.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.written)
    }
}

/// Streams uops back out of a trace file.
///
/// By default every corrupted record is a hard error. In *tolerant*
/// mode ([`TraceReader::tolerant`]) the reader instead skips damaged
/// bytes and resynchronises on the next record whose checksum verifies,
/// counting what it dropped — useful for salvaging partially corrupted
/// archives during reproduction runs.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    remaining: u64,
    total: u64,
    tolerant: bool,
    skipped: u64,
    skipped_bytes: u64,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file and validates its header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if the magic does not match.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps any byte source positioned at the start of a trace and
    /// validates its header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or if the magic does not match.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a perconf trace (bad magic)",
            ));
        }
        let mut count = [0u8; 8];
        input.read_exact(&mut count)?;
        let total = u64::from_le_bytes(count);
        Ok(Self {
            input,
            remaining: total,
            total,
            tolerant: false,
            skipped: 0,
            skipped_bytes: 0,
        })
    }

    /// Switches the reader into tolerant mode: checksum-failing records
    /// are skipped instead of erroring, resynchronising byte-by-byte on
    /// the next record whose checksum (and kind byte) verify. A trace
    /// that runs out early simply ends the iteration. Inspect
    /// [`skipped`](Self::skipped) afterwards to learn how much was
    /// dropped.
    #[must_use]
    pub fn tolerant(mut self) -> Self {
        self.tolerant = true;
        self
    }

    /// Number of resynchronisation events (runs of damaged bytes
    /// skipped) so far. Zero on a clean trace.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Total bytes discarded while resynchronising.
    #[must_use]
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped_bytes
    }

    /// Records left to read.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Total records the header claims this trace holds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    fn read_record(&mut self) -> io::Result<Uop> {
        // 1-based index of the record being read, for error messages.
        let n = self.total - self.remaining;
        let total = self.total;
        let mut rec = [0u8; RECORD_BYTES];
        self.input.read_exact(&mut rec).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                // The header promised more records than the file holds:
                // the trace was cut short, not corrupted in place.
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("trace truncated at record {n} of {total}"),
                )
            } else {
                e
            }
        })?;
        if checksum(&rec[..26]) != rec[26] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace record {n} of {total}: checksum mismatch (corrupted record)"),
            ));
        }
        Self::decode(&rec)
    }

    /// Reads the next record, sliding over damaged bytes until a
    /// checksum-valid record is found. `UnexpectedEof` means the stream
    /// is exhausted (possibly mid-slide).
    fn read_record_resync(&mut self) -> io::Result<Uop> {
        let mut rec = [0u8; RECORD_BYTES];
        self.input.read_exact(&mut rec)?;
        let mut slid = 0u64;
        while checksum(&rec[..26]) != rec[26] || rec[0] > 5 {
            rec.copy_within(1.., 0);
            let mut next = [0u8; 1];
            if let Err(e) = self.input.read_exact(&mut next) {
                // Credit bytes already discarded before giving up.
                if slid > 0 {
                    self.skipped += 1;
                    self.skipped_bytes += slid;
                }
                return Err(e);
            }
            rec[RECORD_BYTES - 1] = next[0];
            slid += 1;
        }
        if slid > 0 {
            self.skipped += 1;
            self.skipped_bytes += slid;
        }
        Self::decode(&rec)
    }

    fn decode(rec: &[u8; RECORD_BYTES]) -> io::Result<Uop> {
        let kind = kind_from_u8(rec[0])?;
        let src1 = u32::from_le_bytes(rec[1..5].try_into().expect("4 bytes"));
        let src2 = u32::from_le_bytes(rec[5..9].try_into().expect("4 bytes"));
        let payload = u64::from_le_bytes(rec[9..17].try_into().expect("8 bytes"));
        let aux = u64::from_le_bytes(rec[17..25].try_into().expect("8 bytes"));
        let flags = rec[25];
        let (mem, branch) = match kind {
            UopKind::Load | UopKind::Store => (Some(MemRef { addr: payload }), None),
            UopKind::Branch => (
                None,
                Some(Branch {
                    pc: payload,
                    site: u32::try_from(aux).map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "site id overflow")
                    })?,
                    taken: flags & 1 == 1,
                }),
            ),
            _ => (None, None),
        };
        Ok(Uop {
            kind,
            src1,
            src2,
            mem,
            branch,
        })
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<Uop>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if !self.tolerant {
            return Some(self.read_record());
        }
        match self.read_record_resync() {
            Ok(u) => Some(Ok(u)),
            // A tolerant trace that runs dry (corruption swallowed the
            // tail, or the header over-promised) just ends.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.remaining = 0;
                None
            }
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec2000_config;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("perconf-trace-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_every_uop() {
        let cfg = spec2000_config("gcc").unwrap();
        let path = tmp("roundtrip");
        let mut gen = WorkloadGenerator::new(&cfg);
        TraceWriter::record(&mut gen, 5_000, &path).unwrap();

        let replayed: Vec<Uop> = TraceReader::open(&path)
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        let original: Vec<Uop> = WorkloadGenerator::new(&cfg).take(5_000).collect();
        assert_eq!(replayed, original);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_count_matches_records() {
        let cfg = spec2000_config("eon").unwrap();
        let path = tmp("count");
        let mut gen = WorkloadGenerator::new(&cfg);
        TraceWriter::record(&mut gen, 123, &path).unwrap();
        let r = TraceReader::open(&path).unwrap();
        assert_eq!(r.remaining(), 123);
        assert_eq!(r.count(), 123);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTATRACE-PADDING").unwrap();
        assert!(TraceReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_is_detected() {
        let cfg = spec2000_config("gap").unwrap();
        let path = tmp("corrupt");
        let mut gen = WorkloadGenerator::new(&cfg);
        TraceWriter::record(&mut gen, 10, &path).unwrap();
        // Flip a byte inside the first record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16 + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = TraceReader::open(&path).unwrap();
        assert!(r.next().unwrap().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tolerant_reader_skips_corrupt_record_and_counts_it() {
        let cfg = spec2000_config("gap").unwrap();
        let path = tmp("tolerant-corrupt");
        let mut gen = WorkloadGenerator::new(&cfg);
        TraceWriter::record(&mut gen, 50, &path).unwrap();
        let original: Vec<Uop> = WorkloadGenerator::new(&cfg).take(50).collect();

        // Damage record 10 in place (payload byte).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16 + 10 * RECORD_BYTES + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut r = TraceReader::open(&path).unwrap().tolerant();
        let got: Vec<Uop> = r.by_ref().map(Result::unwrap).collect();
        // The damaged record is dropped; everything else survives.
        assert_eq!(got.len(), 49);
        assert_eq!(&got[..10], &original[..10]);
        assert_eq!(&got[10..], &original[11..]);
        assert_eq!(r.skipped(), 1);
        assert!(r.skipped_bytes() >= u64::try_from(RECORD_BYTES).unwrap() - 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tolerant_reader_resyncs_after_inserted_garbage() {
        let cfg = spec2000_config("vpr").unwrap();
        let path = tmp("tolerant-insert");
        let mut gen = WorkloadGenerator::new(&cfg);
        TraceWriter::record(&mut gen, 60, &path).unwrap();
        let original: Vec<Uop> = WorkloadGenerator::new(&cfg).take(60).collect();

        // Splice 5 garbage bytes between records 20 and 21, breaking
        // the fixed-width framing for everything after.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = 16 + 20 * RECORD_BYTES;
        for (i, b) in [0xDEu8, 0xAD, 0xBE, 0xEF, 0x99].into_iter().enumerate() {
            bytes.insert(at + i, b);
        }
        std::fs::write(&path, &bytes).unwrap();

        let mut r = TraceReader::open(&path).unwrap().tolerant();
        let got: Vec<Uop> = r.by_ref().map(Result::unwrap).collect();
        assert!(r.skipped() >= 1);
        // Prefix before the splice is intact, and the reader recovers
        // a long run of post-splice records rather than erroring out.
        assert_eq!(&got[..20], &original[..20]);
        assert!(got.len() >= 55, "recovered only {} records", got.len());
        for u in &got[21..] {
            assert!(original.contains(u));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tolerant_reader_is_exact_on_clean_traces() {
        let cfg = spec2000_config("eon").unwrap();
        let path = tmp("tolerant-clean");
        let mut gen = WorkloadGenerator::new(&cfg);
        TraceWriter::record(&mut gen, 200, &path).unwrap();
        let mut r = TraceReader::open(&path).unwrap().tolerant();
        let got: Vec<Uop> = r.by_ref().map(Result::unwrap).collect();
        assert_eq!(
            got,
            WorkloadGenerator::new(&cfg).take(200).collect::<Vec<_>>()
        );
        assert_eq!(r.skipped(), 0);
        assert_eq!(r.skipped_bytes(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tolerant_reader_ends_quietly_on_truncation() {
        let cfg = spec2000_config("gzip").unwrap();
        let path = tmp("tolerant-trunc");
        let mut gen = WorkloadGenerator::new(&cfg);
        TraceWriter::record(&mut gen, 100, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let results: Vec<_> = TraceReader::open(&path).unwrap().tolerant().collect();
        assert!(results.iter().all(std::result::Result::is_ok));
        assert!(!results.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_errors_instead_of_hanging() {
        let cfg = spec2000_config("vpr").unwrap();
        let path = tmp("trunc");
        let mut gen = WorkloadGenerator::new(&cfg);
        TraceWriter::record(&mut gen, 100, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let results: Vec<_> = TraceReader::open(&path).unwrap().collect();
        assert!(results.iter().any(std::result::Result::is_err));
        std::fs::remove_file(&path).ok();
    }
}
