use rand::Rng;
use serde::{Deserialize, Serialize};

/// Coarse behaviour class of a branch site, used for reporting and for
/// stratified assignment of behaviours to sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BehaviorClass {
    /// Strongly biased toward one direction.
    Biased,
    /// Loop back-edge: taken `trip - 1` times, then not-taken once.
    Loop,
    /// Outcome is a (noisy) linearly separable function of recent
    /// global history — learnable by both gshare and perceptrons.
    LinearHistory,
    /// Outcome is a (noisy) XOR of history bits — learnable by pattern
    /// tables (gshare) but *not* linearly separable.
    XorHistory,
    /// Data-dependent, effectively random outcome.
    Random,
    /// Alternates between a *stable* phase (deterministic linear
    /// function of history) and a *chaotic* phase (coin flips).
    /// Models the bursty, phase-correlated mispredictability of real
    /// branches — the signal confidence estimators exploit.
    Phased,
    /// Linear function of *distant* history bits (beyond the reach of
    /// the baseline predictor's history window, but within the
    /// confidence estimator's 32-bit window). Such branches are
    /// systematically mispredicted in identifiable contexts — the
    /// long-history correlation that perceptron structures exploit and
    /// the population branch reversal wins on.
    LongHistory,
    /// Deterministic periodic pattern (period 3–7 visits). Because the
    /// site recurs once per control-flow-path iteration, the period in
    /// *global history* distance is `period × path-length` — beyond a
    /// 12-bit gshare window but within the estimator's 32 bits. The
    /// baseline predicts the majority direction and is systematically
    /// wrong on the minority positions: the classic
    /// reversal-correctable population.
    Periodic,
}

/// Parameterised behaviour specification, before per-site
/// instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BehaviorSpec {
    /// Bernoulli outcome with probability `p_taken` of being taken.
    Biased {
        /// Probability of the branch being taken.
        p_taken: f64,
    },
    /// Loop back-edge with the given mean trip count (per-site trip
    /// counts are drawn near this mean at instantiation).
    Loop {
        /// Mean loop trip count (must be ≥ 2).
        mean_trip: u32,
    },
    /// Noisy linear function of `taps` randomly chosen history bits.
    LinearHistory {
        /// Number of history taps (odd values avoid ties).
        taps: u8,
        /// Probability of flipping the deterministic outcome.
        noise: f64,
    },
    /// Noisy XOR of two randomly chosen history bits.
    XorHistory {
        /// Probability of flipping the deterministic outcome.
        noise: f64,
    },
    /// Bernoulli coin with probability `p_taken`.
    Random {
        /// Probability of the branch being taken.
        p_taken: f64,
    },
    /// Phase-alternating behaviour: deterministic (history-linear) for
    /// a geometric-length stable phase, then random for a
    /// geometric-length chaotic phase.
    Phased {
        /// Mean stable-phase length in visits.
        mean_stable: u32,
        /// Mean chaotic-phase length in visits.
        mean_chaotic: u32,
    },
    /// Noisy linear function of distant history bits (taps drawn from
    /// [`LONG_TAP_MIN`], [`LONG_TAP_MAX`]).
    LongHistory {
        /// Probability of flipping the deterministic outcome.
        noise: f64,
    },
    /// Deterministic repeating outcome pattern of the given period
    /// (per-site patterns drawn at instantiation), with a small noise
    /// flip probability.
    Periodic {
        /// Pattern length in visits (2..=8).
        period: u32,
        /// Probability of flipping the deterministic outcome.
        noise: f64,
    },
}

impl BehaviorClass {
    /// Classes that are hard for table predictors — the generator's
    /// stratified assignment gives these the *hottest* sites first,
    /// mirroring real programs where mispredictions concentrate in a
    /// handful of notorious, frequently executed branches.
    #[must_use]
    pub fn is_hard(self) -> bool {
        matches!(
            self,
            BehaviorClass::Random
                | BehaviorClass::Phased
                | BehaviorClass::LongHistory
                | BehaviorClass::Periodic
                | BehaviorClass::XorHistory
        )
    }
}

impl BehaviorSpec {
    /// The coarse class of this spec.
    #[must_use]
    pub fn class(&self) -> BehaviorClass {
        match self {
            BehaviorSpec::Biased { .. } => BehaviorClass::Biased,
            BehaviorSpec::Loop { .. } => BehaviorClass::Loop,
            BehaviorSpec::LinearHistory { .. } => BehaviorClass::LinearHistory,
            BehaviorSpec::XorHistory { .. } => BehaviorClass::XorHistory,
            BehaviorSpec::Random { .. } => BehaviorClass::Random,
            BehaviorSpec::Phased { .. } => BehaviorClass::Phased,
            BehaviorSpec::LongHistory { .. } => BehaviorClass::LongHistory,
            BehaviorSpec::Periodic { .. } => BehaviorClass::Periodic,
        }
    }

    /// Rough intrinsic misprediction rate of this behaviour under a
    /// well-trained history-based predictor; used only for calibration
    /// documentation and sanity tests, not by the generator itself.
    #[must_use]
    pub fn intrinsic_miss_rate(&self) -> f64 {
        match *self {
            BehaviorSpec::Biased { p_taken } => p_taken.min(1.0 - p_taken),
            BehaviorSpec::Loop { mean_trip } => 1.0 / f64::from(mean_trip.max(2)),
            BehaviorSpec::LinearHistory { noise, .. } | BehaviorSpec::XorHistory { noise } => noise,
            BehaviorSpec::Random { p_taken } => p_taken.min(1.0 - p_taken),
            BehaviorSpec::Phased {
                mean_stable,
                mean_chaotic,
            } => 0.5 * f64::from(mean_chaotic) / f64::from(mean_stable + mean_chaotic).max(1.0),
            // A short-history predictor sees only the majority
            // direction of a balanced far-bit function.
            BehaviorSpec::LongHistory { .. } => 0.45,
            // Majority prediction misses the minority positions.
            BehaviorSpec::Periodic { period, .. } => {
                f64::from(period / 2) / f64::from(period.max(2))
            }
        }
    }
}

/// Maximum history bit position (exclusive) that correlated behaviours
/// may tap. Kept low so that both a 16-bit gshare index and a 32-bit
/// perceptron history window can observe every tap, and so the
/// per-site pattern space stays small enough to be learnable.
pub const MAX_TAP: u32 = 5;

/// Lowest history bit a [`BehaviorSpec::LongHistory`] site may tap —
/// chosen beyond the baseline predictors' history windows (gshare uses
/// 12 bits, JRS folds 13) so these correlations are invisible to them.
pub const LONG_TAP_MIN: u32 = 16;
/// Highest (exclusive) long-history tap; within the perceptron
/// estimator's 32-bit window.
pub const LONG_TAP_MAX: u32 = 30;

/// A static branch site: a [`BehaviorSpec`] instantiated with concrete
/// per-site parameters (tap positions, signs, trip count) and mutable
/// per-site state (loop counter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchSite {
    /// Site identifier (index into the workload's site table).
    pub id: u32,
    /// Instruction address assigned to this site.
    pub pc: u64,
    /// The behaviour specification this site was built from.
    pub spec: BehaviorSpec,
    taps: Vec<(u32, bool)>,
    trip: u32,
    loop_count: u32,
    chaotic: bool,
    phase_left: u32,
    pattern: u16,
    pattern_pos: u32,
}

impl BranchSite {
    /// Returns `true` for behaviour classes whose outcome is *data
    /// dependent*: the generator makes such branches consume a
    /// freshly-loaded value (a "pointer load"), so their resolution in
    /// the pipeline waits on the memory hierarchy — the coupling that
    /// makes hard branches resolve late on real machines.
    #[must_use]
    pub fn is_data_dependent(&self) -> bool {
        matches!(
            self.spec.class(),
            BehaviorClass::Random
                | BehaviorClass::LinearHistory
                | BehaviorClass::XorHistory
                | BehaviorClass::Phased
                | BehaviorClass::LongHistory
        )
    }

    /// The repeating pattern of a [`BehaviorSpec::Periodic`] site
    /// (low `period` bits; bit `i` = outcome of visit `i mod period`).
    /// Returns 0 for other classes.
    #[must_use]
    pub fn pattern(&self) -> u16 {
        self.pattern
    }

    /// Instantiates a site from a spec, drawing per-site parameters
    /// (taps, signs, trip count) from `rng`.
    pub fn instantiate<R: Rng>(id: u32, spec: BehaviorSpec, rng: &mut R) -> Self {
        let pc = 0x0040_0000 + u64::from(id) * 16;
        let mut taps = Vec::new();
        let mut trip = 0;
        let mut pattern = 0u16;
        match spec {
            BehaviorSpec::LinearHistory { taps: n, .. } => {
                for _ in 0..n {
                    taps.push((rng.gen_range(0..MAX_TAP), rng.gen::<bool>()));
                }
            }
            BehaviorSpec::XorHistory { .. } => {
                let a = rng.gen_range(0..MAX_TAP);
                let mut b = rng.gen_range(0..MAX_TAP);
                while b == a {
                    b = rng.gen_range(0..MAX_TAP);
                }
                taps.push((a, true));
                taps.push((b, true));
            }
            BehaviorSpec::Loop { mean_trip } => {
                let lo = (mean_trip / 2).max(2);
                let hi = mean_trip + mean_trip / 2 + 1;
                trip = rng.gen_range(lo..=hi.max(lo));
            }
            BehaviorSpec::Phased { .. } => {
                // Stable-phase outcomes follow a per-site linear
                // function, like LinearHistory.
                for _ in 0..5 {
                    taps.push((rng.gen_range(0..MAX_TAP), rng.gen::<bool>()));
                }
            }
            BehaviorSpec::LongHistory { .. } => {
                for _ in 0..3 {
                    taps.push((rng.gen_range(LONG_TAP_MIN..LONG_TAP_MAX), rng.gen::<bool>()));
                }
            }
            BehaviorSpec::Periodic { period, .. } => {
                // Draw a balanced-ish pattern: avoid all-same patterns,
                // which would degenerate into a biased branch.
                let p = period.clamp(2, 8);
                loop {
                    pattern = (rng.gen::<u16>()) & ((1 << p) - 1);
                    let ones = pattern.count_ones();
                    if ones > 0 && ones < p {
                        break;
                    }
                }
            }
            _ => {}
        }
        Self {
            id,
            pc,
            spec,
            taps,
            trip,
            loop_count: 0,
            chaotic: false,
            phase_left: 0,
            pattern,
            pattern_pos: 0,
        }
    }

    fn linear_outcome(&self, history: u64) -> bool {
        let mut sum = 0i32;
        for &(tap, sign) in &self.taps {
            let bit = (history >> tap) & 1 == 1;
            let v = if bit { 1 } else { -1 };
            sum += if sign { v } else { -v };
        }
        sum > 0
    }

    /// Produces the next architectural outcome for this site given the
    /// current global history register (`bit 0` = most recent branch,
    /// `1` = taken).
    pub fn next_outcome<R: Rng>(&mut self, history: u64, rng: &mut R) -> bool {
        match self.spec {
            BehaviorSpec::Biased { p_taken } | BehaviorSpec::Random { p_taken } => {
                rng.gen::<f64>() < p_taken
            }
            BehaviorSpec::Loop { .. } => {
                self.loop_count += 1;
                if self.loop_count >= self.trip {
                    self.loop_count = 0;
                    false
                } else {
                    true
                }
            }
            BehaviorSpec::LinearHistory { noise, .. } => {
                let mut out = self.linear_outcome(history);
                if rng.gen::<f64>() < noise {
                    out = !out;
                }
                out
            }
            BehaviorSpec::XorHistory { noise } => {
                let a = (history >> self.taps[0].0) & 1;
                let b = (history >> self.taps[1].0) & 1;
                let mut out = (a ^ b) == 1;
                if rng.gen::<f64>() < noise {
                    out = !out;
                }
                out
            }
            BehaviorSpec::LongHistory { noise } => {
                let mut out = self.linear_outcome(history);
                if rng.gen::<f64>() < noise {
                    out = !out;
                }
                out
            }
            BehaviorSpec::Periodic { period, noise } => {
                let p = period.clamp(2, 8);
                let mut out = (self.pattern >> self.pattern_pos) & 1 == 1;
                self.pattern_pos = (self.pattern_pos + 1) % p;
                if rng.gen::<f64>() < noise {
                    out = !out;
                }
                out
            }
            BehaviorSpec::Phased {
                mean_stable,
                mean_chaotic,
            } => {
                if self.phase_left == 0 {
                    self.chaotic = !self.chaotic;
                    let mean = if self.chaotic {
                        mean_chaotic
                    } else {
                        mean_stable
                    };
                    // Geometric-ish phase length around the mean.
                    self.phase_left = rng.gen_range(1..=mean.max(1) * 2);
                }
                self.phase_left -= 1;
                if self.chaotic {
                    rng.gen::<bool>()
                } else {
                    self.linear_outcome(history)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(123)
    }

    #[test]
    fn loop_site_is_taken_trip_minus_one_times() {
        let mut r = rng();
        let mut s = BranchSite::instantiate(0, BehaviorSpec::Loop { mean_trip: 8 }, &mut r);
        let trip = s.trip;
        assert!(trip >= 2);
        let mut outcomes = Vec::new();
        for _ in 0..trip * 3 {
            outcomes.push(s.next_outcome(0, &mut r));
        }
        // Exactly one not-taken per trip iterations.
        let not_taken: usize = outcomes.iter().filter(|&&t| !t).count();
        assert_eq!(not_taken, 3);
        // And it repeats with period `trip`.
        let first_exit = outcomes.iter().position(|&t| !t).unwrap();
        assert_eq!(first_exit, trip as usize - 1);
    }

    #[test]
    fn biased_site_matches_bias() {
        let mut r = rng();
        let mut s = BranchSite::instantiate(0, BehaviorSpec::Biased { p_taken: 0.9 }, &mut r);
        let taken = (0..20_000).filter(|_| s.next_outcome(0, &mut r)).count();
        let frac = taken as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn linear_history_is_deterministic_without_noise() {
        let mut r = rng();
        let mut s = BranchSite::instantiate(
            0,
            BehaviorSpec::LinearHistory {
                taps: 5,
                noise: 0.0,
            },
            &mut r,
        );
        for h in [0u64, 0xFFFF, 0xAAAA, 0x1357] {
            let a = s.next_outcome(h, &mut r);
            let b = s.next_outcome(h, &mut r);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn xor_history_follows_parity() {
        let mut r = rng();
        let mut s = BranchSite::instantiate(0, BehaviorSpec::XorHistory { noise: 0.0 }, &mut r);
        let (a, _) = s.taps[0];
        let (b, _) = s.taps[1];
        assert_ne!(a, b);
        let h_same = 0u64; // both bits 0 -> xor 0 -> not taken
        assert!(!s.next_outcome(h_same, &mut r));
        let h_diff = 1u64 << a; // one bit set -> xor 1 -> taken
        assert!(s.next_outcome(h_diff, &mut r));
    }

    #[test]
    fn taps_stay_below_max_tap() {
        let mut r = rng();
        for i in 0..50 {
            let s = BranchSite::instantiate(
                i,
                BehaviorSpec::LinearHistory {
                    taps: 5,
                    noise: 0.1,
                },
                &mut r,
            );
            assert!(s.taps.iter().all(|&(t, _)| t < MAX_TAP));
        }
    }

    #[test]
    fn intrinsic_rates_are_sane() {
        assert!(
            BehaviorSpec::Random { p_taken: 0.5 }.intrinsic_miss_rate()
                > BehaviorSpec::Biased { p_taken: 0.95 }.intrinsic_miss_rate()
        );
        assert!((BehaviorSpec::Loop { mean_trip: 10 }.intrinsic_miss_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn pcs_are_unique_per_site() {
        let mut r = rng();
        let a = BranchSite::instantiate(1, BehaviorSpec::Random { p_taken: 0.5 }, &mut r);
        let b = BranchSite::instantiate(2, BehaviorSpec::Random { p_taken: 0.5 }, &mut r);
        assert_ne!(a.pc, b.pc);
    }
}
