use serde::{Deserialize, Serialize};

/// Everything an estimator may look at when assigning confidence to a
/// branch prediction at fetch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EstimateCtx {
    /// Branch instruction address.
    pub pc: u64,
    /// Global-history snapshot at prediction time (bit 0 = most
    /// recent outcome, 1 = taken).
    pub history: u64,
    /// The direction the branch predictor produced (pre-reversal).
    /// The *enhanced* JRS indexing folds this into its table index.
    pub predicted_taken: bool,
}

/// Three-way confidence classification.
///
/// Binary estimators only ever produce `High` or `WeakLow`; the
/// perceptron estimator's multi-valued output additionally separates
/// `StrongLow`, the region where reversing the prediction wins
/// (paper §5.3, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfidenceClass {
    /// Prediction is probably correct; speculate freely.
    High,
    /// Prediction is suspect; count it toward pipeline gating.
    WeakLow,
    /// Prediction is probably wrong; reverse it.
    StrongLow,
}

impl ConfidenceClass {
    /// Stable numeric index used by trace events and counter names:
    /// 0 = `High`, 1 = `WeakLow`, 2 = `StrongLow`.
    #[must_use]
    pub fn index(self) -> u64 {
        match self {
            ConfidenceClass::High => 0,
            ConfidenceClass::WeakLow => 1,
            ConfidenceClass::StrongLow => 2,
        }
    }

    /// Short stable display name (trace exports, counter names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ConfidenceClass::High => "high",
            ConfidenceClass::WeakLow => "weak_low",
            ConfidenceClass::StrongLow => "strong_low",
        }
    }
}

/// The result of one confidence lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Estimate {
    /// Raw multi-valued estimator output (perceptron dot product, or
    /// a counter value mapped onto an integer scale for table-based
    /// estimators). Larger means *less* confident for every estimator
    /// in this crate, so thresholds compose uniformly.
    pub raw: i32,
    /// The classification derived from `raw` by the estimator's
    /// thresholds.
    pub class: ConfidenceClass,
}

impl Estimate {
    /// Returns `true` for both low-confidence classes.
    #[must_use]
    pub fn is_low(&self) -> bool {
        self.class != ConfidenceClass::High
    }
}

/// Common interface of all branch confidence estimators.
///
/// `estimate` is a pure lookup performed in the fetch stage; `train`
/// is applied non-speculatively at retirement (paper §3), passing back
/// the [`Estimate`] produced at fetch so the estimator can see its own
/// earlier decision (the perceptron training rule needs both `y` and
/// the confidence `c` assigned in the front end).
///
/// The trait is object-safe; the pipeline simulator stores a
/// `Box<dyn ConfidenceEstimator>`.
pub trait ConfidenceEstimator {
    /// Assigns confidence to the prediction described by `ctx`.
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate;

    /// Trains with the retirement outcome. `mispredicted` refers to
    /// the *underlying predictor's* direction (pre-reversal), matching
    /// the paper's single-structure design.
    fn train(&mut self, ctx: &EstimateCtx, est: Estimate, mispredicted: bool);

    /// Short, stable display name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Storage budget in bits (the paper equalises JRS and perceptron
    /// at 4 KB).
    fn storage_bits(&self) -> u64;
}

impl<C: ConfidenceEstimator + ?Sized> ConfidenceEstimator for Box<C> {
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate {
        (**self).estimate(ctx)
    }

    fn train(&mut self, ctx: &EstimateCtx, est: Estimate, mispredicted: bool) {
        (**self).train(ctx, est, mispredicted);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }
}

/// A confidence estimator that can also be checkpointed. Blanket
/// implemented; exists so callers can hold one trait object
/// (`Box<dyn SimEstimator>`) giving both capabilities.
pub trait SimEstimator: ConfidenceEstimator + perconf_bpred::Snapshot {}

impl<T: ConfidenceEstimator + perconf_bpred::Snapshot> SimEstimator for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_low_covers_both_low_classes() {
        let mk = |class| Estimate { raw: 0, class };
        assert!(!mk(ConfidenceClass::High).is_low());
        assert!(mk(ConfidenceClass::WeakLow).is_low());
        assert!(mk(ConfidenceClass::StrongLow).is_low());
    }

    #[test]
    fn class_indices_and_labels_are_stable() {
        let all = [
            ConfidenceClass::High,
            ConfidenceClass::WeakLow,
            ConfidenceClass::StrongLow,
        ];
        assert_eq!(all.map(ConfidenceClass::index), [0, 1, 2]);
        assert_eq!(
            all.map(ConfidenceClass::label),
            ["high", "weak_low", "strong_low"]
        );
    }

    #[test]
    fn boxed_estimator_delegates() {
        let ce: Box<dyn ConfidenceEstimator> = Box::new(crate::AlwaysHigh);
        let ctx = EstimateCtx {
            pc: 4,
            history: 0,
            predicted_taken: false,
        };
        assert_eq!(ce.estimate(&ctx).class, ConfidenceClass::High);
        assert_eq!(ce.name(), "always-high");
    }
}
