use perconf_bpred::{Snapshot, StateDigest};
use serde::{Deserialize, Serialize};

/// The low-confidence branch counter at the heart of pipeline gating
/// (paper Figure 1).
///
/// The fetch unit increments the counter when it fetches a branch
/// flagged low confidence, and decrements it when such a branch
/// resolves (or is squashed). While the count is at or above the
/// configured threshold, fetch is **gated** — subsequent instructions
/// are judged likely wrong-path and not worth fetching.
///
/// The paper's `PLn` notation is the threshold: `PL1` gates as soon as
/// one unresolved low-confidence branch is in flight, `PL2` after two,
/// and so on. Low thresholds need an accurate estimator (high PVN);
/// the JRS estimator's low accuracy forces `PL2`/`PL3` to avoid
/// constant false stalls.
///
/// # Examples
///
/// ```
/// use perconf_core::GateCounter;
///
/// let mut g = GateCounter::new(2); // PL2
/// g.on_low_conf_fetch();
/// assert!(!g.should_gate());
/// g.on_low_conf_fetch();
/// assert!(g.should_gate());
/// g.on_low_conf_resolve();
/// assert!(!g.should_gate());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GateCounter {
    count: u32,
    threshold: u32,
}

impl GateCounter {
    /// Creates a counter with gating threshold `threshold` (the `n` of
    /// `PLn`).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (fetch would never proceed).
    #[must_use]
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "gating threshold must be positive");
        Self {
            count: 0,
            threshold,
        }
    }

    /// Number of unresolved low-confidence branches currently tracked.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The configured threshold.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records the fetch of a low-confidence branch.
    pub fn on_low_conf_fetch(&mut self) {
        self.count += 1;
    }

    /// Records the resolution (or squash) of a low-confidence branch.
    ///
    /// Saturates at zero: resolving more than was fetched indicates a
    /// bookkeeping bug upstream, but the counter stays consistent.
    pub fn on_low_conf_resolve(&mut self) {
        self.count = self.count.saturating_sub(1);
    }

    /// Returns `true` while fetch should be stalled.
    #[must_use]
    pub fn should_gate(&self) -> bool {
        self.count >= self.threshold
    }

    /// Clears the counter (used on full pipeline squash).
    pub fn reset(&mut self) {
        self.count = 0;
    }
}

impl Snapshot for GateCounter {
    perconf_bpred::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.count))
            .word(u64::from(self.threshold));
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_at_threshold() {
        let mut g = GateCounter::new(1);
        assert!(!g.should_gate());
        g.on_low_conf_fetch();
        assert!(g.should_gate());
    }

    #[test]
    fn resolve_reopens_fetch() {
        let mut g = GateCounter::new(2);
        g.on_low_conf_fetch();
        g.on_low_conf_fetch();
        g.on_low_conf_fetch();
        assert!(g.should_gate());
        g.on_low_conf_resolve();
        assert!(g.should_gate()); // still 2 >= 2
        g.on_low_conf_resolve();
        assert!(!g.should_gate());
    }

    #[test]
    fn resolve_saturates_at_zero() {
        let mut g = GateCounter::new(1);
        g.on_low_conf_resolve();
        assert_eq!(g.count(), 0);
        assert!(!g.should_gate());
    }

    #[test]
    fn reset_clears() {
        let mut g = GateCounter::new(1);
        g.on_low_conf_fetch();
        g.reset();
        assert_eq!(g.count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = GateCounter::new(0);
    }
}
