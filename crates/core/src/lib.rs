//! Perceptron-based branch confidence estimation — the primary
//! contribution of *Akkary et al., HPCA 2004* — together with every
//! prior estimator the paper compares against and the speculation-
//! control policies it drives.
//!
//! # The idea
//!
//! A **confidence estimator** watches each conditional-branch
//! prediction at fetch and classifies it *high confidence* (probably
//! correct) or *low confidence* (probably wrong). The paper's
//! estimator, [`PerceptronCe`], keeps an array of perceptrons indexed
//! by branch PC whose inputs are the global branch history; crucially
//! it is trained with **correct/incorrect prediction outcomes**
//! (`perceptron_cic`) rather than the taken/not-taken directions used
//! by the Jimenez–Lin predictor ([`PerceptronTnt`] reproduces that
//! alternative for comparison). The multi-valued output `y` then
//! separates branches into three regions (Figure 5):
//!
//! * `y` **above the reversal threshold** → *strongly low confident* —
//!   most such predictions are wrong, so **reverse** them
//!   ([`ConfidenceClass::StrongLow`]);
//! * `y` **in the gating band** → *weakly low confident* — apply
//!   **pipeline gating**: stall fetch once [`GateCounter`] sees enough
//!   unresolved low-confidence branches ([`ConfidenceClass::WeakLow`]);
//! * `y` **below the band** → high confidence; speculate freely.
//!
//! # Estimators implemented
//!
//! | Type | Scheme | Paper role |
//! |---|---|---|
//! | [`PerceptronCe`] | perceptron trained correct/incorrect | the contribution (`perceptron_cic`) |
//! | [`PerceptronTnt`] | confidence from a direction-trained perceptron's `abs(y)` | §5.3 straw man |
//! | [`JrsEstimator`] | miss-distance resetting counters (original and *enhanced* indexing) | best prior work |
//! | [`SmithCe`] | predictor saturating-counter extremeness | prior work |
//! | [`TysonCe`] | PAs local-history pattern classes | prior work |
//!
//! # Examples
//!
//! ```
//! use perconf_core::{ConfidenceEstimator, EstimateCtx, PerceptronCe, PerceptronCeConfig};
//!
//! let mut ce = PerceptronCe::new(PerceptronCeConfig::default());
//! let ctx = EstimateCtx { pc: 0x40_0000, history: 0b1101, predicted_taken: true };
//! let est = ce.estimate(&ctx);
//! // ... branch retires; its prediction turned out correct:
//! ce.train(&ctx, est, false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod composite;
mod controller;
mod estimate;
mod faultable;
mod gating;
mod jrs;
mod perceptron_ce;
mod smith;
mod tnt;
mod tyson;

pub use composite::{CombineRule, CompositeCe};
pub use controller::{BranchDecision, SpeculationController, TrainOutcome};
pub use estimate::{ConfidenceClass, ConfidenceEstimator, Estimate, EstimateCtx, SimEstimator};
pub use faultable::FaultableEstimator;
pub use gating::GateCounter;
pub use jrs::{JrsConfig, JrsEstimator, MissPolicy};
pub use perceptron_ce::{PerceptronCe, PerceptronCeConfig};
pub use smith::SmithCe;
pub use tnt::{PerceptronTnt, PerceptronTntConfig};
pub use tyson::TysonCe;

/// An estimator that flags every branch high confidence; with gating
/// enabled it therefore never stalls fetch. Useful as the control arm
/// in experiments and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysHigh;

impl perconf_bpred::FaultableState for AlwaysHigh {
    fn state_bits(&self) -> u64 {
        0
    }

    fn flip_state_bit(&mut self, _bit: u64) {}
}

impl perconf_bpred::Snapshot for AlwaysHigh {
    fn save_state(&self) -> serde::Value {
        serde::Value::Null
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), perconf_bpred::SnapshotError> {
        Ok(())
    }

    fn state_digest(&self) -> u64 {
        // Stateless: any fixed value works; distinct from the empty
        // FNV basis so an AlwaysHigh slot is visible in parent digests.
        0x416c_7761_7973_4869 // "AlwaysHi"
    }
}

impl ConfidenceEstimator for AlwaysHigh {
    fn estimate(&self, _ctx: &EstimateCtx) -> Estimate {
        Estimate {
            raw: i32::MIN / 2,
            class: ConfidenceClass::High,
        }
    }

    fn train(&mut self, _ctx: &EstimateCtx, _est: Estimate, _mispredicted: bool) {}

    fn name(&self) -> &'static str {
        "always-high"
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_high_never_flags() {
        let ce = AlwaysHigh;
        let ctx = EstimateCtx {
            pc: 0,
            history: 0,
            predicted_taken: true,
        };
        assert_eq!(ce.estimate(&ctx).class, ConfidenceClass::High);
        assert!(!ce.estimate(&ctx).is_low());
    }
}
