use crate::estimate::{ConfidenceClass, ConfidenceEstimator, Estimate, EstimateCtx};
use perconf_bpred::{flip_weight_bit, FaultableState, Snapshot, StateDigest};
use serde::{Deserialize, Serialize};

/// Configuration of the paper's perceptron confidence estimator.
///
/// The default is the paper's 4 KB `P128W8H32` design point: 128
/// perceptrons, 8-bit weights, 32 bits of global history, binary
/// threshold λ = 0 and no reversal region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PerceptronCeConfig {
    /// Number of perceptrons in the array (paper default 128).
    pub entries: u32,
    /// Global-history length = number of non-bias weights (paper 32).
    pub hist_len: u32,
    /// Weight width in bits (paper 8; Table 6 sweeps 4 and 6).
    pub weight_bits: u32,
    /// Low-confidence threshold λ: output `>= lambda` → low confidence
    /// (paper sweeps 25, 0, −25, −50; the combined reversal+gating
    /// experiments use −75).
    pub lambda: i32,
    /// Training threshold `T`: the perceptron keeps training while
    /// `|y| <= T` even when its classification was right.
    pub train_threshold: i32,
    /// Reversal threshold: when `Some(r)`, outputs `> r` are
    /// classified [`ConfidenceClass::StrongLow`] (paper §5.5 uses 0).
    pub reverse_lambda: Option<i32>,
}

impl Default for PerceptronCeConfig {
    fn default() -> Self {
        Self {
            entries: 128,
            hist_len: 32,
            weight_bits: 8,
            lambda: 0,
            train_threshold: 75,
            reverse_lambda: None,
        }
    }
}

impl PerceptronCeConfig {
    /// The combined pipeline-gating + branch-reversal configuration
    /// (paper §5.5). The paper reverses above 0 and gates in
    /// `[-75, 0]` — thresholds read off *their* Figure 5 density
    /// crossover and tuned empirically for zero average loss. Applying
    /// the same methodology to our substrate's densities (crossover at
    /// +30, retirement-lag safety margin above it) yields: reverse
    /// above 90, gate in `[-30, 90]`, high confidence below −30. See
    /// EXPERIMENTS.md for the tuning sweep.
    #[must_use]
    pub fn combined() -> Self {
        Self {
            lambda: -30,
            reverse_lambda: Some(90),
            ..Self::default()
        }
    }

    /// A named size/shape point in the paper's Table 6 notation,
    /// e.g. `P128W8H32`.
    #[must_use]
    pub fn sized(entries: u32, weight_bits: u32, hist_len: u32) -> Self {
        Self {
            entries,
            weight_bits,
            hist_len,
            ..Self::default()
        }
    }

    /// Table 6 label for this configuration, e.g. `"P128W8H32"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("P{}W{}H{}", self.entries, self.weight_bits, self.hist_len)
    }
}

/// The paper's contribution: a perceptron confidence estimator trained
/// with **correct/incorrect** prediction outcomes (`perceptron_cic`).
///
/// An array of perceptrons is indexed by branch PC; the input vector is
/// the global branch history (taken = +1, not-taken = −1) plus a
/// constant bias input. The multi-valued output
/// `y = w0 + Σ w[i]·x[i]` estimates how *mispredictable* the branch is
/// in this history context:
///
/// * `y >= λ` → **low confidence** (and when a reversal threshold is
///   configured, `y > r` → *strongly* low → reverse the prediction);
/// * `y < λ` → high confidence.
///
/// Training (paper §3) happens at retirement. With `p = +1` for a
/// misprediction and `-1` for a correct prediction, and `c = ±1` the
/// confidence assigned at fetch, the weights are updated by
/// `w[i] += p·x[i]` whenever `sign(c) != sign(p)` (the estimator was
/// wrong) or `|y| <= T` (it was right but not yet confident). Because
/// mispredictions are rare, the outputs of predictable branches drift
/// strongly negative, producing the separated CB/MB densities of
/// Figure 4.
///
/// # Examples
///
/// ```
/// use perconf_core::{ConfidenceEstimator, EstimateCtx, PerceptronCe, PerceptronCeConfig};
///
/// let mut ce = PerceptronCe::new(PerceptronCeConfig::default());
/// let ctx = EstimateCtx { pc: 0x40, history: 0b1, predicted_taken: true };
/// // The branch mispredicts whenever history bit 0 is set; after
/// // training, confidence in that context should be low.
/// for _ in 0..40 {
///     let est = ce.estimate(&ctx);
///     ce.train(&ctx, est, true);
/// }
/// assert!(ce.estimate(&ctx).is_low());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerceptronCe {
    weights: Vec<i32>,
    cfg: PerceptronCeConfig,
    weight_min: i32,
    weight_max: i32,
}

impl PerceptronCe {
    /// Creates an estimator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`, `hist_len` is outside `1..=64`,
    /// `weight_bits` is outside `2..=8`, or a configured
    /// `reverse_lambda` lies below `lambda` (the reversal region must
    /// sit above the gating band).
    #[must_use]
    pub fn new(cfg: PerceptronCeConfig) -> Self {
        assert!(cfg.entries > 0, "need at least one perceptron");
        assert!(
            cfg.hist_len >= 1 && cfg.hist_len <= 64,
            "history must be 1..=64"
        );
        assert!(
            cfg.weight_bits >= 2 && cfg.weight_bits <= 8,
            "weight bits must be 2..=8"
        );
        if let Some(r) = cfg.reverse_lambda {
            assert!(
                r >= cfg.lambda,
                "reversal threshold must not be below the low-confidence threshold"
            );
        }
        let n = (cfg.hist_len + 1) as usize * cfg.entries as usize;
        Self {
            weights: vec![0; n],
            weight_min: -(1 << (cfg.weight_bits - 1)),
            weight_max: (1 << (cfg.weight_bits - 1)) - 1,
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PerceptronCeConfig {
        &self.cfg
    }

    fn row(&self, pc: u64) -> usize {
        // Power-of-two table sizes (every stock config) index with a
        // mask instead of a hardware divide; other sizes keep the
        // exact modulo semantics.
        let e = u64::from(self.cfg.entries);
        let r = if e.is_power_of_two() {
            (pc >> 2) & (e - 1)
        } else {
            (pc >> 2) % e
        };
        r as usize * (self.cfg.hist_len + 1) as usize
    }

    /// The raw multi-valued output `y` for this lookup — the quantity
    /// whose density Figures 4–7 plot.
    #[must_use]
    pub fn output(&self, pc: u64, hist: u64) -> i32 {
        let row = self.row(pc);
        let w = &self.weights[row..row + (self.cfg.hist_len + 1) as usize];
        let mut y = w[0];
        for i in 0..self.cfg.hist_len as usize {
            let x = if (hist >> i) & 1 == 1 { 1 } else { -1 };
            y += w[i + 1] * x;
        }
        y
    }

    fn classify(&self, y: i32) -> ConfidenceClass {
        if let Some(r) = self.cfg.reverse_lambda {
            if y > r {
                return ConfidenceClass::StrongLow;
            }
        }
        if y >= self.cfg.lambda {
            ConfidenceClass::WeakLow
        } else {
            ConfidenceClass::High
        }
    }
}

impl FaultableState for PerceptronCe {
    fn state_bits(&self) -> u64 {
        self.weights.len() as u64 * u64::from(self.cfg.weight_bits)
    }

    fn flip_state_bit(&mut self, bit: u64) {
        let w = u64::from(self.cfg.weight_bits);
        let bit = bit % self.state_bits();
        let idx = (bit / w) as usize;
        self.weights[idx] =
            flip_weight_bit(self.weights[idx], self.cfg.weight_bits, (bit % w) as u32);
    }
}

impl Snapshot for PerceptronCe {
    perconf_bpred::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.cfg.entries))
            .word(u64::from(self.cfg.hist_len))
            .signed(i64::from(self.weight_min))
            .signed(i64::from(self.weight_max));
        for &w in &self.weights {
            d.signed(i64::from(w));
        }
        d.finish()
    }
}

impl ConfidenceEstimator for PerceptronCe {
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate {
        let y = self.output(ctx.pc, ctx.history);
        Estimate {
            raw: y,
            class: self.classify(y),
        }
    }

    fn train(&mut self, ctx: &EstimateCtx, est: Estimate, mispredicted: bool) {
        // Paper §3: p = +1 for an incorrect prediction, −1 for correct;
        // c = +1 when the front end flagged low confidence, −1 for high.
        let p: i32 = if mispredicted { 1 } else { -1 };
        let c: i32 = if est.is_low() { 1 } else { -1 };
        let y = est.raw;
        if c != p || y.abs() <= self.cfg.train_threshold {
            let row = self.row(ctx.pc);
            let n = (self.cfg.hist_len + 1) as usize;
            let w = &mut self.weights[row..row + n];
            w[0] = (w[0] + p).clamp(self.weight_min, self.weight_max);
            for i in 0..self.cfg.hist_len as usize {
                let x = if (ctx.history >> i) & 1 == 1 { 1 } else { -1 };
                w[i + 1] = (w[i + 1] + p * x).clamp(self.weight_min, self.weight_max);
            }
        }
    }

    fn name(&self) -> &'static str {
        "perceptron-cic"
    }

    fn storage_bits(&self) -> u64 {
        self.weights.len() as u64 * u64::from(self.cfg.weight_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, history: u64) -> EstimateCtx {
        EstimateCtx {
            pc,
            history,
            predicted_taken: true,
        }
    }

    #[test]
    fn default_is_the_papers_4kb_design_point() {
        let ce = PerceptronCe::new(PerceptronCeConfig::default());
        assert_eq!(ce.storage_bits(), 128 * 33 * 8);
        // The paper calls the array "4KB"; with the bias weight it is
        // 4.125 KB — within 4% of the JRS table.
        assert!((ce.storage_bits() as i64 - 4 * 1024 * 8).abs() < 1500);
        assert_eq!(ce.config().label(), "P128W8H32");
    }

    #[test]
    fn outputs_drift_negative_on_correct_predictions() {
        let mut ce = PerceptronCe::new(PerceptronCeConfig::default());
        let c = ctx(0x40, 0b1010);
        for _ in 0..60 {
            let est = ce.estimate(&c);
            ce.train(&c, est, false);
        }
        assert!(ce.output(0x40, 0b1010) < -14);
        assert!(!ce.estimate(&c).is_low());
    }

    #[test]
    fn outputs_drift_positive_on_mispredictions() {
        let mut ce = PerceptronCe::new(PerceptronCeConfig::default());
        let c = ctx(0x40, 0);
        for _ in 0..60 {
            let est = ce.estimate(&c);
            ce.train(&c, est, true);
        }
        assert!(ce.output(0x40, 0) > 14);
        assert!(ce.estimate(&c).is_low());
    }

    #[test]
    fn learns_history_correlated_mispredictability() {
        // Mispredicted iff history bit 3 set — a linearly separable
        // target the CE must learn.
        let mut ce = PerceptronCe::new(PerceptronCeConfig::default());
        for i in 0..2000u64 {
            let h = i.wrapping_mul(0x9E37_79B9) & 0xFFFF;
            let c = ctx(0x80, h);
            let est = ce.estimate(&c);
            ce.train(&c, est, (h >> 3) & 1 == 1);
        }
        let mut correct = 0;
        for i in 0..200u64 {
            let h = i.wrapping_mul(0x5851_F42D) & 0xFFFF;
            let want_low = (h >> 3) & 1 == 1;
            if ce.estimate(&ctx(0x80, h)).is_low() == want_low {
                correct += 1;
            }
        }
        assert!(correct > 170, "correct={correct}/200");
    }

    #[test]
    fn lambda_shifts_the_low_confidence_region() {
        let mut strict = PerceptronCe::new(PerceptronCeConfig {
            lambda: 25,
            ..PerceptronCeConfig::default()
        });
        let mut loose = PerceptronCe::new(PerceptronCeConfig {
            lambda: -50,
            ..PerceptronCeConfig::default()
        });
        // Untrained output is 0: low under λ=-50, high under λ=25.
        let c = ctx(0x10, 0);
        assert!(!strict.estimate(&c).is_low());
        assert!(loose.estimate(&c).is_low());
        // Keep both trained with the same mild misprediction stream.
        for _ in 0..3 {
            let es = strict.estimate(&c);
            strict.train(&c, es, true);
            let el = loose.estimate(&c);
            loose.train(&c, el, true);
        }
        assert!(loose.estimate(&c).is_low());
    }

    #[test]
    fn combined_config_produces_three_classes() {
        let ce = PerceptronCe::new(PerceptronCeConfig::combined());
        assert_eq!(ce.classify(120), ConfidenceClass::StrongLow);
        assert_eq!(ce.classify(0), ConfidenceClass::WeakLow);
        assert_eq!(ce.classify(-30), ConfidenceClass::WeakLow);
        assert_eq!(ce.classify(-31), ConfidenceClass::High);
    }

    #[test]
    fn training_stops_outside_threshold_when_classification_correct() {
        let mut ce = PerceptronCe::new(PerceptronCeConfig {
            train_threshold: 10,
            ..PerceptronCeConfig::default()
        });
        let c = ctx(0x40, 0);
        // Drive output well below -10 with correct predictions.
        for _ in 0..40 {
            let est = ce.estimate(&c);
            ce.train(&c, est, false);
        }
        let settled = ce.output(0x40, 0);
        // Further correct predictions no longer change the weights:
        // classification is right (High) and |y| > T.
        let est = ce.estimate(&c);
        ce.train(&c, est, false);
        assert_eq!(ce.output(0x40, 0), settled);
    }

    #[test]
    fn weights_clamp_to_configured_width() {
        let mut ce = PerceptronCe::new(PerceptronCeConfig {
            weight_bits: 4,
            ..PerceptronCeConfig::default()
        });
        let c = ctx(0x40, 0x55);
        for _ in 0..200 {
            let est = ce.estimate(&c);
            ce.train(&c, est, true);
        }
        assert!(ce.weights.iter().all(|&w| (-8..=7).contains(&w)));
    }

    #[test]
    fn sized_constructor_matches_table6_labels() {
        for (e, w, h) in [(128, 8, 32), (96, 8, 32), (128, 6, 32), (64, 8, 32)] {
            let cfg = PerceptronCeConfig::sized(e, w, h);
            assert_eq!(cfg.label(), format!("P{e}W{w}H{h}"));
            let ce = PerceptronCe::new(cfg);
            assert_eq!(
                ce.storage_bits(),
                u64::from(e) * u64::from(h + 1) * u64::from(w)
            );
        }
    }

    #[test]
    #[should_panic(expected = "reversal threshold")]
    fn reversal_below_lambda_panics() {
        let _ = PerceptronCe::new(PerceptronCeConfig {
            lambda: 0,
            reverse_lambda: Some(-10),
            ..PerceptronCeConfig::default()
        });
    }
}
