use crate::estimate::ConfidenceEstimator;
use perconf_bpred::{FaultableState, Snapshot};

/// A confidence estimator whose state can be fault-injected. Blanket
/// implemented; exists so callers can hold one trait object
/// (`Box<dyn FaultableEstimator>`) giving all three capabilities.
/// [`Snapshot`] is a supertrait so fault-injected runs can be
/// checkpointed and resumed like clean ones.
pub trait FaultableEstimator: ConfidenceEstimator + FaultableState + Snapshot {}

impl<T: ConfidenceEstimator + FaultableState + Snapshot> FaultableEstimator for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        AlwaysHigh, EstimateCtx, JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig,
    };

    fn ctx() -> EstimateCtx {
        EstimateCtx {
            pc: 0x40,
            history: 0b1011,
            predicted_taken: true,
        }
    }

    #[test]
    fn trait_object_combines_estimate_and_flip() {
        let mut ce: Box<dyn FaultableEstimator> =
            Box::new(PerceptronCe::new(PerceptronCeConfig::default()));
        // pc 0 maps to perceptron 0, whose bias weight holds bit 6.
        let c = EstimateCtx { pc: 0, ..ctx() };
        let before = ce.estimate(&c).raw;
        ce.flip_state_bit(6);
        assert_ne!(ce.estimate(&c).raw, before);
    }

    #[test]
    fn estimator_state_bits_match_storage_bits() {
        let p = PerceptronCe::new(PerceptronCeConfig::default());
        assert_eq!(p.state_bits(), p.storage_bits());
        let j = JrsEstimator::new(JrsConfig::default());
        assert_eq!(j.state_bits(), j.storage_bits());
    }

    #[test]
    fn stateless_estimator_ignores_flips() {
        let mut ce = AlwaysHigh;
        assert_eq!(ce.state_bits(), 0);
        ce.flip_state_bit(0); // must not panic (modulo-zero guard)
        assert!(!ce.estimate(&ctx()).is_low());
    }

    #[test]
    fn jrs_flip_perturbs_only_one_entry() {
        let mut j = JrsEstimator::new(JrsConfig::default());
        let reference = JrsEstimator::new(JrsConfig::default());
        j.flip_state_bit(0);
        let mut diffs = 0;
        for pc in (0..64 * 1024u64).step_by(4) {
            let c = EstimateCtx {
                pc,
                history: 0,
                predicted_taken: true,
            };
            if j.estimate(&c).raw != reference.estimate(&c).raw {
                diffs += 1;
            }
        }
        // One flipped counter maps to a bounded set of aliased contexts.
        assert!(diffs >= 1, "flip had no observable effect");
    }
}
