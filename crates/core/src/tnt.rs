use crate::estimate::{ConfidenceClass, ConfidenceEstimator, Estimate, EstimateCtx};
use perconf_bpred::{BranchPredictor, FaultableState, PerceptronPredictor, Snapshot, StateDigest};
use serde::{Deserialize, Serialize};

/// Configuration of [`PerceptronTnt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PerceptronTntConfig {
    /// Number of perceptrons (default 128, matching the cic array).
    pub entries: u32,
    /// History length (default 32).
    pub hist_len: u32,
    /// Confidence threshold on `|y|`: predictions with `|y| <= lambda`
    /// are flagged low confidence.
    pub lambda: i32,
}

impl Default for PerceptronTntConfig {
    fn default() -> Self {
        Self {
            entries: 128,
            hist_len: 32,
            lambda: 30,
        }
    }
}

/// The Jimenez–Lin suggestion the paper argues against (§5.3): derive
/// confidence from a **direction-trained** perceptron by how close its
/// output is to zero (`perceptron_tnt`).
///
/// The embedded [`PerceptronPredictor`] is trained with taken/not-taken
/// outcomes; a prediction is flagged low confidence when `|y|` falls at
/// or below λ. [`Estimate::raw`] is reported as `lambda - |y|` so that
/// larger raw = less confident, uniform with the other estimators.
///
/// Figures 6–7 show why this fails: correctly predicted branches
/// outnumber mispredicted ones at *every* output magnitude, so no
/// threshold achieves both useful coverage and accuracy.
///
/// The actual branch direction needed for training is recovered from
/// `ctx.predicted_taken XOR mispredicted`.
///
/// # Examples
///
/// ```
/// use perconf_core::{ConfidenceEstimator, EstimateCtx, PerceptronTnt, PerceptronTntConfig};
///
/// let mut ce = PerceptronTnt::new(PerceptronTntConfig::default());
/// let ctx = EstimateCtx { pc: 0x40, history: 0, predicted_taken: true };
/// assert!(ce.estimate(&ctx).is_low()); // untrained: |y| = 0 <= λ
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerceptronTnt {
    predictor: PerceptronPredictor,
    cfg: PerceptronTntConfig,
}

impl PerceptronTnt {
    /// Creates an estimator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0` or `hist_len` is outside `1..=64`.
    #[must_use]
    pub fn new(cfg: PerceptronTntConfig) -> Self {
        Self {
            predictor: PerceptronPredictor::new(cfg.entries, cfg.hist_len),
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PerceptronTntConfig {
        &self.cfg
    }

    /// The signed direction-perceptron output for this lookup (the
    /// quantity plotted in Figures 6–7).
    #[must_use]
    pub fn output(&self, pc: u64, hist: u64) -> i32 {
        self.predictor.output(pc, hist)
    }
}

impl FaultableState for PerceptronTnt {
    fn state_bits(&self) -> u64 {
        self.predictor.state_bits()
    }

    fn flip_state_bit(&mut self, bit: u64) {
        self.predictor.flip_state_bit(bit);
    }
}

impl Snapshot for PerceptronTnt {
    perconf_bpred::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(self.predictor.state_digest())
            .signed(i64::from(self.cfg.lambda));
        d.finish()
    }
}

impl ConfidenceEstimator for PerceptronTnt {
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate {
        let y = self.predictor.output(ctx.pc, ctx.history);
        let low = y.abs() <= self.cfg.lambda;
        Estimate {
            raw: self.cfg.lambda - y.abs(),
            class: if low {
                ConfidenceClass::WeakLow
            } else {
                ConfidenceClass::High
            },
        }
    }

    fn train(&mut self, ctx: &EstimateCtx, _est: Estimate, mispredicted: bool) {
        let actual_taken = ctx.predicted_taken != mispredicted;
        self.predictor.train(ctx.pc, ctx.history, actual_taken);
    }

    fn name(&self) -> &'static str {
        "perceptron-tnt"
    }

    fn storage_bits(&self) -> u64 {
        self.predictor.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, history: u64, predicted_taken: bool) -> EstimateCtx {
        EstimateCtx {
            pc,
            history,
            predicted_taken,
        }
    }

    #[test]
    fn strongly_biased_branch_becomes_high_confidence() {
        let mut ce = PerceptronTnt::new(PerceptronTntConfig::default());
        let c = ctx(0x40, 0, true);
        for _ in 0..100 {
            let est = ce.estimate(&c);
            ce.train(&c, est, false); // predicted taken, was taken
        }
        assert!(!ce.estimate(&c).is_low());
        assert!(ce.output(0x40, 0) > 30);
    }

    #[test]
    fn training_recovers_actual_direction() {
        let mut ce = PerceptronTnt::new(PerceptronTntConfig::default());
        // Predicted taken but always mispredicted → actual is not-taken;
        // the direction perceptron should drift negative.
        let c = ctx(0x80, 0, true);
        for _ in 0..100 {
            let est = ce.estimate(&c);
            ce.train(&c, est, true);
        }
        assert!(ce.output(0x80, 0) < -30);
        // Direction is stable, so |y| is large → high confidence, even
        // though the *predictor being estimated* keeps missing. This is
        // exactly the failure mode the paper identifies.
        assert!(!ce.estimate(&c).is_low());
    }

    #[test]
    fn alternating_outcomes_stay_low_confidence() {
        let mut ce = PerceptronTnt::new(PerceptronTntConfig::default());
        // With a fixed (zero) history snapshot, alternation is
        // unlearnable and y hovers near 0.
        let c = ctx(0x100, 0, true);
        for i in 0..100 {
            let est = ce.estimate(&c);
            ce.train(&c, est, i % 2 == 0);
        }
        assert!(ce.estimate(&c).is_low());
    }

    #[test]
    fn raw_increases_as_output_approaches_zero() {
        let mut ce = PerceptronTnt::new(PerceptronTntConfig::default());
        let c = ctx(0x40, 0, true);
        let raw_untrained = ce.estimate(&c).raw;
        for _ in 0..50 {
            let est = ce.estimate(&c);
            ce.train(&c, est, false);
        }
        assert!(ce.estimate(&c).raw < raw_untrained);
    }

    #[test]
    fn storage_matches_embedded_predictor() {
        let ce = PerceptronTnt::new(PerceptronTntConfig::default());
        assert_eq!(ce.storage_bits(), 128 * 33 * 8);
    }
}
