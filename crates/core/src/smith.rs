use crate::estimate::{ConfidenceClass, ConfidenceEstimator, Estimate, EstimateCtx};
use perconf_bpred::{FaultableState, SatCounter, Snapshot, StateDigest};
use serde::{Deserialize, Serialize};

/// Smith's counter-based confidence scheme (1981, as evaluated by
/// Grunwald et al.): a branch is high confidence only when its
/// direction counter sits at an extreme (saturated) state.
///
/// A private bimodal-style table of n-bit counters is trained with the
/// recovered actual direction (`predicted_taken XOR mispredicted`);
/// middle counter states — where the branch has recently wavered — are
/// flagged low confidence.
///
/// # Examples
///
/// ```
/// use perconf_core::{ConfidenceEstimator, EstimateCtx, SmithCe};
///
/// let mut ce = SmithCe::new(12, 2);
/// let ctx = EstimateCtx { pc: 0x40, history: 0, predicted_taken: true };
/// assert!(ce.estimate(&ctx).is_low()); // middle state initially
/// for _ in 0..4 {
///     let est = ce.estimate(&ctx);
///     ce.train(&ctx, est, false); // consistently taken
/// }
/// assert!(!ce.estimate(&ctx).is_low());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmithCe {
    table: Vec<SatCounter>,
    index_bits: u32,
    counter_bits: u8,
}

impl SmithCe {
    /// Creates a table of `2^index_bits` counters of `counter_bits`
    /// bits each.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=26` or `counter_bits`
    /// outside `1..=7`.
    #[must_use]
    pub fn new(index_bits: u32, counter_bits: u8) -> Self {
        assert!((1..=26).contains(&index_bits), "index bits must be 1..=26");
        Self {
            table: vec![SatCounter::new(counter_bits); 1 << index_bits],
            index_bits,
            counter_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }
}

impl FaultableState for SmithCe {
    fn state_bits(&self) -> u64 {
        self.table.len() as u64 * u64::from(self.counter_bits)
    }

    fn flip_state_bit(&mut self, bit: u64) {
        let bit = bit % self.state_bits();
        let w = u64::from(self.counter_bits);
        self.table[(bit / w) as usize].flip_state_bit(bit % w);
    }
}

impl Snapshot for SmithCe {
    perconf_bpred::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.index_bits)).byte(self.counter_bits);
        for c in &self.table {
            d.byte(c.value());
        }
        d.finish()
    }
}

impl ConfidenceEstimator for SmithCe {
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate {
        let c = self.table[self.index(ctx.pc)];
        let low = !c.is_saturated();
        // Distance from the nearest extreme, scaled so larger = less
        // confident.
        let dist = i32::from(c.value().min(c.max() - c.value()));
        Estimate {
            raw: dist,
            class: if low {
                ConfidenceClass::WeakLow
            } else {
                ConfidenceClass::High
            },
        }
    }

    fn train(&mut self, ctx: &EstimateCtx, _est: Estimate, mispredicted: bool) {
        let actual_taken = ctx.predicted_taken != mispredicted;
        let i = self.index(ctx.pc);
        self.table[i].update(actual_taken);
    }

    fn name(&self) -> &'static str {
        "smith"
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * u64::from(self.counter_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, predicted_taken: bool) -> EstimateCtx {
        EstimateCtx {
            pc,
            history: 0,
            predicted_taken,
        }
    }

    #[test]
    fn wavering_branch_stays_low_confidence() {
        let mut ce = SmithCe::new(10, 2);
        let c = ctx(0x40, true);
        for i in 0..50 {
            let est = ce.estimate(&c);
            // Alternate actual directions via the mispredicted flag.
            ce.train(&c, est, i % 2 == 0);
        }
        assert!(ce.estimate(&c).is_low());
    }

    #[test]
    fn stable_branch_saturates_to_high_confidence() {
        let mut ce = SmithCe::new(10, 3);
        let c = ctx(0x80, false);
        for _ in 0..10 {
            let est = ce.estimate(&c);
            ce.train(&c, est, false); // consistently not-taken
        }
        assert!(!ce.estimate(&c).is_low());
        assert_eq!(ce.estimate(&c).raw, 0);
    }

    #[test]
    fn raw_is_distance_from_extreme() {
        let ce = SmithCe::new(4, 2);
        // Initial 2-bit counter value is 1 → distance 1 from either end.
        assert_eq!(ce.estimate(&ctx(0x10, true)).raw, 1);
    }

    #[test]
    fn storage_bits() {
        assert_eq!(SmithCe::new(12, 2).storage_bits(), 4096 * 2);
    }
}
