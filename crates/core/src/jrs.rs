use crate::estimate::{ConfidenceClass, ConfidenceEstimator, Estimate, EstimateCtx};
use perconf_bpred::{FaultableState, ResettingCounter, SatCounter, Snapshot, StateDigest};
use serde::{DeError, Deserialize, Serialize, Value};

/// How a JRS table entry reacts to a misprediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MissPolicy {
    /// Reset the counter to zero (the original JRS "miss distance
    /// counter" — a single miss wipes the branch's record).
    #[default]
    Reset,
    /// Saturating decrement (a gentler ablation: one miss costs one
    /// step of confidence). Used by the ablation benches to show why
    /// the paper's resetting counters have such high coverage.
    Decrement,
}

/// Configuration of a [`JrsEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JrsConfig {
    /// log2 of the table size (paper: 13 → 8K entries).
    pub index_bits: u32,
    /// Width of each miss-distance counter (paper: 4 bits).
    pub counter_bits: u8,
    /// Number of global-history bits XORed into the index.
    pub hist_bits: u32,
    /// High-confidence threshold λ: counter `>= lambda` → high
    /// confidence (paper sweeps 3, 7, 11, 15).
    pub lambda: u8,
    /// Enhanced indexing (Grunwald et al.): folds the predicted
    /// direction into the index alongside the history.
    pub enhanced: bool,
    /// Reaction to a misprediction (reset = the paper's JRS).
    pub miss_policy: MissPolicy,
}

impl Default for JrsConfig {
    /// The paper's configuration: 8K × 4-bit resetting counters
    /// (4 KB of state), enhanced indexing, λ = 7.
    fn default() -> Self {
        Self {
            index_bits: 13,
            counter_bits: 4,
            hist_bits: 13,
            lambda: 7,
            enhanced: true,
            miss_policy: MissPolicy::Reset,
        }
    }
}

#[derive(Debug, Clone)]
enum CounterTable {
    Resetting(Vec<ResettingCounter>),
    Saturating(Vec<SatCounter>),
}

// Tuple variants are outside the vendored serde derive's supported
// shapes, so the impls are written by hand using the same externally
// tagged layout a derive would produce for struct variants.
impl Serialize for CounterTable {
    fn to_value(&self) -> Value {
        let (tag, inner) = match self {
            CounterTable::Resetting(t) => ("Resetting", t.to_value()),
            CounterTable::Saturating(t) => ("Saturating", t.to_value()),
        };
        Value::Object(vec![(tag.into(), inner)])
    }
}

impl Deserialize for CounterTable {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) if fields.len() == 1 => {
                let (tag, inner) = &fields[0];
                match tag.as_str() {
                    "Resetting" => Ok(CounterTable::Resetting(Vec::from_value(inner)?)),
                    "Saturating" => Ok(CounterTable::Saturating(Vec::from_value(inner)?)),
                    other => Err(DeError(format!(
                        "unknown variant `{other}` of CounterTable"
                    ))),
                }
            }
            _ => Err(DeError("expected variant of CounterTable".into())),
        }
    }
}

/// The JRS miss-distance-counter confidence estimator (Jacobson,
/// Rotenberg & Smith, MICRO 1998), including the *enhanced* variant of
/// Grunwald et al. that folds the predicted direction into the index.
///
/// Each entry counts consecutive correct predictions; a misprediction
/// resets it. A branch whose counter is below λ is flagged low
/// confidence: it has not yet proven itself with λ straight correct
/// predictions in this (PC, history) context.
///
/// [`Estimate::raw`] is reported as `lambda - counter` so that, as for
/// every estimator in this crate, *larger raw = less confident*.
///
/// # Examples
///
/// ```
/// use perconf_core::{ConfidenceEstimator, EstimateCtx, JrsConfig, JrsEstimator};
///
/// let mut jrs = JrsEstimator::new(JrsConfig { lambda: 3, ..JrsConfig::default() });
/// let ctx = EstimateCtx { pc: 0x40, history: 0, predicted_taken: true };
/// assert!(jrs.estimate(&ctx).is_low()); // fresh counter: low confidence
/// for _ in 0..3 {
///     let est = jrs.estimate(&ctx);
///     jrs.train(&ctx, est, false); // three correct predictions
/// }
/// assert!(!jrs.estimate(&ctx).is_low());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JrsEstimator {
    table: CounterTable,
    cfg: JrsConfig,
}

impl JrsEstimator {
    /// Creates an estimator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=26` or `lambda` exceeds
    /// the counter's maximum value.
    #[must_use]
    pub fn new(cfg: JrsConfig) -> Self {
        assert!(
            cfg.index_bits >= 1 && cfg.index_bits <= 26,
            "index bits must be 1..=26"
        );
        let proto = ResettingCounter::new(cfg.counter_bits);
        assert!(
            cfg.lambda <= proto.max(),
            "lambda must fit in the counter range"
        );
        let n = 1usize << cfg.index_bits;
        let table = match cfg.miss_policy {
            MissPolicy::Reset => CounterTable::Resetting(vec![proto; n]),
            MissPolicy::Decrement => {
                CounterTable::Saturating(vec![SatCounter::with_value(cfg.counter_bits, 0); n])
            }
        };
        Self { table, cfg }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &JrsConfig {
        &self.cfg
    }

    fn index(&self, ctx: &EstimateCtx) -> usize {
        let mask = (1u64 << self.cfg.index_bits) - 1;
        let hmask = if self.cfg.hist_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.hist_bits) - 1
        };
        let mut h = ctx.history & hmask;
        if self.cfg.enhanced {
            // Fold the predicted direction in with the history, as in
            // the enhanced JRS estimator of Grunwald et al.
            h = (h << 1) | u64::from(ctx.predicted_taken);
        }
        (((ctx.pc >> 2) ^ h) & mask) as usize
    }
}

impl FaultableState for JrsEstimator {
    fn state_bits(&self) -> u64 {
        let n = match &self.table {
            CounterTable::Resetting(t) => t.len(),
            CounterTable::Saturating(t) => t.len(),
        };
        n as u64 * u64::from(self.cfg.counter_bits)
    }

    fn flip_state_bit(&mut self, bit: u64) {
        let bit = bit % self.state_bits();
        let w = u64::from(self.cfg.counter_bits);
        let (idx, b) = ((bit / w) as usize, bit % w);
        match &mut self.table {
            CounterTable::Resetting(t) => t[idx].flip_state_bit(b),
            CounterTable::Saturating(t) => t[idx].flip_state_bit(b),
        }
    }
}

impl Snapshot for JrsEstimator {
    perconf_bpred::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.cfg.index_bits));
        match &self.table {
            CounterTable::Resetting(t) => {
                d.byte(0);
                for c in t {
                    d.byte(c.value());
                }
            }
            CounterTable::Saturating(t) => {
                d.byte(1);
                for c in t {
                    d.byte(c.value());
                }
            }
        }
        d.finish()
    }
}

impl ConfidenceEstimator for JrsEstimator {
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate {
        let i = self.index(ctx);
        let v = match &self.table {
            CounterTable::Resetting(t) => t[i].value(),
            CounterTable::Saturating(t) => t[i].value(),
        };
        let low = v < self.cfg.lambda;
        Estimate {
            raw: i32::from(self.cfg.lambda) - i32::from(v),
            class: if low {
                ConfidenceClass::WeakLow
            } else {
                ConfidenceClass::High
            },
        }
    }

    fn train(&mut self, ctx: &EstimateCtx, _est: Estimate, mispredicted: bool) {
        let i = self.index(ctx);
        match &mut self.table {
            CounterTable::Resetting(t) => {
                if mispredicted {
                    t[i].incorrect();
                } else {
                    t[i].correct();
                }
            }
            CounterTable::Saturating(t) => t[i].update(!mispredicted),
        }
    }

    fn name(&self) -> &'static str {
        if self.cfg.enhanced {
            "enhanced-JRS"
        } else {
            "JRS"
        }
    }

    fn storage_bits(&self) -> u64 {
        let n = match &self.table {
            CounterTable::Resetting(t) => t.len(),
            CounterTable::Saturating(t) => t.len(),
        };
        n as u64 * u64::from(self.cfg.counter_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, history: u64, predicted_taken: bool) -> EstimateCtx {
        EstimateCtx {
            pc,
            history,
            predicted_taken,
        }
    }

    #[test]
    fn default_is_the_papers_4kb_table() {
        let jrs = JrsEstimator::new(JrsConfig::default());
        assert_eq!(jrs.storage_bits(), 8 * 1024 * 4);
        assert_eq!(jrs.name(), "enhanced-JRS");
    }

    #[test]
    fn needs_lambda_straight_corrects_for_high_confidence() {
        let mut jrs = JrsEstimator::new(JrsConfig {
            lambda: 7,
            ..JrsConfig::default()
        });
        let c = ctx(0x40, 0b1010, true);
        for i in 0..7 {
            assert!(jrs.estimate(&c).is_low(), "iteration {i}");
            let est = jrs.estimate(&c);
            jrs.train(&c, est, false);
        }
        assert!(!jrs.estimate(&c).is_low());
    }

    #[test]
    fn misprediction_resets_to_low_confidence() {
        let mut jrs = JrsEstimator::new(JrsConfig {
            lambda: 3,
            ..JrsConfig::default()
        });
        let c = ctx(0x40, 0, false);
        for _ in 0..5 {
            let est = jrs.estimate(&c);
            jrs.train(&c, est, false);
        }
        assert!(!jrs.estimate(&c).is_low());
        let est = jrs.estimate(&c);
        jrs.train(&c, est, true);
        assert!(jrs.estimate(&c).is_low());
    }

    #[test]
    fn enhanced_indexing_separates_directions() {
        let mut jrs = JrsEstimator::new(JrsConfig {
            lambda: 3,
            ..JrsConfig::default()
        });
        let taken = ctx(0x40, 0b1, true);
        let not_taken = ctx(0x40, 0b1, false);
        for _ in 0..5 {
            let est = jrs.estimate(&taken);
            jrs.train(&taken, est, false);
        }
        assert!(!jrs.estimate(&taken).is_low());
        // Same PC and history but opposite prediction hits a different
        // counter under enhanced indexing.
        assert!(jrs.estimate(&not_taken).is_low());
    }

    #[test]
    fn original_indexing_ignores_direction() {
        let mut jrs = JrsEstimator::new(JrsConfig {
            enhanced: false,
            lambda: 3,
            ..JrsConfig::default()
        });
        assert_eq!(jrs.name(), "JRS");
        let a = ctx(0x40, 0b1, true);
        let b = ctx(0x40, 0b1, false);
        for _ in 0..5 {
            let est = jrs.estimate(&a);
            jrs.train(&a, est, false);
        }
        assert!(!jrs.estimate(&b).is_low());
    }

    #[test]
    fn raw_is_monotonic_in_distrust() {
        let mut jrs = JrsEstimator::new(JrsConfig {
            lambda: 15,
            ..JrsConfig::default()
        });
        let c = ctx(0x80, 0, true);
        let fresh = jrs.estimate(&c).raw;
        let est = jrs.estimate(&c);
        jrs.train(&c, est, false);
        let after_correct = jrs.estimate(&c).raw;
        assert!(after_correct < fresh);
    }

    #[test]
    fn decrement_policy_recovers_gradually() {
        let mut jrs = JrsEstimator::new(JrsConfig {
            lambda: 3,
            miss_policy: MissPolicy::Decrement,
            ..JrsConfig::default()
        });
        let c = ctx(0x40, 0, true);
        for _ in 0..10 {
            let est = jrs.estimate(&c);
            jrs.train(&c, est, false);
        }
        assert!(!jrs.estimate(&c).is_low());
        // One miss only decrements: still above λ=3 (was 15 → 14).
        let est = jrs.estimate(&c);
        jrs.train(&c, est, true);
        assert!(!jrs.estimate(&c).is_low());
        // Whereas with the reset policy a single miss flips to low
        // confidence (covered by misprediction_resets_to_low_confidence).
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn lambda_out_of_counter_range_panics() {
        let _ = JrsEstimator::new(JrsConfig {
            counter_bits: 2,
            lambda: 7,
            ..JrsConfig::default()
        });
    }
}
