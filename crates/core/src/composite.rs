use crate::estimate::{ConfidenceClass, ConfidenceEstimator, Estimate, EstimateCtx};
use perconf_bpred::{Snapshot, SnapshotError, StateDigest};
use serde::{DeError, Deserialize, Serialize, Value};

/// How a [`CompositeCe`] merges its two components' classifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CombineRule {
    /// Flag low confidence only when **both** components do —
    /// trades coverage for accuracy (higher PVN, lower Spec).
    Both,
    /// Flag low confidence when **either** component does —
    /// trades accuracy for coverage (higher Spec, lower PVN).
    Either,
}

/// Combines two confidence estimators with a boolean rule — an
/// extension the estimator-design space naturally suggests: the
/// JRS estimator is coverage-heavy, the perceptron accuracy-heavy, so
/// `Both` builds an estimator more accurate than either alone and
/// `Either` one with more coverage than either alone.
///
/// The composite's [`Estimate::raw`] is the first component's raw
/// output (so density tooling keeps working); its class is binary
/// (`High`/`WeakLow`) — reversal classification stays the job of a
/// bare [`crate::PerceptronCe`].
///
/// # Examples
///
/// ```
/// use perconf_core::{
///     CombineRule, CompositeCe, ConfidenceEstimator, EstimateCtx, JrsConfig, JrsEstimator,
///     PerceptronCe, PerceptronCeConfig,
/// };
///
/// let ce = CompositeCe::new(
///     PerceptronCe::new(PerceptronCeConfig::default()),
///     JrsEstimator::new(JrsConfig::default()),
///     CombineRule::Both,
/// );
/// let ctx = EstimateCtx { pc: 0x40, history: 0, predicted_taken: true };
/// // Fresh JRS flags everything, fresh perceptron (y = 0 >= λ = 0) too:
/// assert!(ce.estimate(&ctx).is_low());
/// ```
#[derive(Debug, Clone)]
pub struct CompositeCe<A, B> {
    a: A,
    b: B,
    rule: CombineRule,
}

impl<A: ConfidenceEstimator, B: ConfidenceEstimator> CompositeCe<A, B> {
    /// Combines `a` and `b` under `rule`.
    #[must_use]
    pub fn new(a: A, b: B, rule: CombineRule) -> Self {
        Self { a, b, rule }
    }

    /// The combining rule in use.
    #[must_use]
    pub fn rule(&self) -> CombineRule {
        self.rule
    }

    /// Access to component `a`.
    #[must_use]
    pub fn component_a(&self) -> &A {
        &self.a
    }

    /// Access to component `b`.
    #[must_use]
    pub fn component_b(&self) -> &B {
        &self.b
    }
}

impl<A: ConfidenceEstimator, B: ConfidenceEstimator> ConfidenceEstimator for CompositeCe<A, B> {
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate {
        let ea = self.a.estimate(ctx);
        let eb = self.b.estimate(ctx);
        let low = match self.rule {
            CombineRule::Both => ea.is_low() && eb.is_low(),
            CombineRule::Either => ea.is_low() || eb.is_low(),
        };
        Estimate {
            raw: ea.raw,
            class: if low {
                ConfidenceClass::WeakLow
            } else {
                ConfidenceClass::High
            },
        }
    }

    fn train(&mut self, ctx: &EstimateCtx, _est: Estimate, mispredicted: bool) {
        // Each component trains on its own fetch-time estimate, as it
        // would if it were deployed alone.
        let ea = self.a.estimate(ctx);
        self.a.train(ctx, ea, mispredicted);
        let eb = self.b.estimate(ctx);
        self.b.train(ctx, eb, mispredicted);
    }

    fn name(&self) -> &'static str {
        match self.rule {
            CombineRule::Both => "composite-both",
            CombineRule::Either => "composite-either",
        }
    }

    fn storage_bits(&self) -> u64 {
        self.a.storage_bits() + self.b.storage_bits()
    }
}

// The vendored serde derive does not handle generic types, so the
// composite's serialization is written by hand.
impl<A: Serialize, B: Serialize> Serialize for CompositeCe<A, B> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("a".into(), self.a.to_value()),
            ("b".into(), self.b.to_value()),
            ("rule".into(), self.rule.to_value()),
        ])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for CompositeCe<A, B> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            a: serde::field(v, "a")?,
            b: serde::field(v, "b")?,
            rule: serde::field(v, "rule")?,
        })
    }
}

impl<A, B> Snapshot for CompositeCe<A, B>
where
    A: Snapshot + Serialize + Deserialize,
    B: Snapshot + Serialize + Deserialize,
{
    fn save_state(&self) -> Value {
        self.to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        *self = Self::from_value(state).map_err(SnapshotError::from_de)?;
        Ok(())
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(self.a.state_digest())
            .word(self.b.state_digest())
            .byte(match self.rule {
                CombineRule::Both => 0,
                CombineRule::Either => 1,
            });
        d.finish()
    }
}

impl<A, B> perconf_bpred::FaultableState for CompositeCe<A, B>
where
    A: perconf_bpred::FaultableState,
    B: perconf_bpred::FaultableState,
{
    fn state_bits(&self) -> u64 {
        self.a.state_bits() + self.b.state_bits()
    }

    fn flip_state_bit(&mut self, bit: u64) {
        if self.state_bits() == 0 {
            return;
        }
        let bit = bit % self.state_bits();
        if bit < self.a.state_bits() {
            self.a.flip_state_bit(bit);
        } else {
            self.b.flip_state_bit(bit - self.a.state_bits());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysHigh, JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig};

    fn ctx(pc: u64) -> EstimateCtx {
        EstimateCtx {
            pc,
            history: 0,
            predicted_taken: true,
        }
    }

    #[test]
    fn both_rule_is_an_and() {
        // AlwaysHigh never flags, so Both(x, AlwaysHigh) never flags.
        let ce = CompositeCe::new(
            JrsEstimator::new(JrsConfig::default()),
            AlwaysHigh,
            CombineRule::Both,
        );
        assert!(!ce.estimate(&ctx(0x40)).is_low());
    }

    #[test]
    fn either_rule_is_an_or() {
        // Fresh JRS flags everything, so Either(JRS, AlwaysHigh) flags.
        let ce = CompositeCe::new(
            JrsEstimator::new(JrsConfig::default()),
            AlwaysHigh,
            CombineRule::Either,
        );
        assert!(ce.estimate(&ctx(0x40)).is_low());
    }

    #[test]
    fn components_train_independently() {
        let mut ce = CompositeCe::new(
            JrsEstimator::new(JrsConfig {
                lambda: 3,
                ..JrsConfig::default()
            }),
            PerceptronCe::new(PerceptronCeConfig::default()),
            CombineRule::Both,
        );
        let c = ctx(0x80);
        for _ in 0..10 {
            let est = ce.estimate(&c);
            ce.train(&c, est, false);
        }
        // The JRS component saturated past λ on its own schedule.
        assert!(!ce.component_a().estimate(&c).is_low());
    }

    #[test]
    fn storage_sums_components() {
        let ce = CompositeCe::new(
            JrsEstimator::new(JrsConfig::default()),
            PerceptronCe::new(PerceptronCeConfig::default()),
            CombineRule::Both,
        );
        assert_eq!(ce.storage_bits(), 8 * 1024 * 4 + 128 * 33 * 8);
    }

    #[test]
    fn names_reflect_rule() {
        let both = CompositeCe::new(AlwaysHigh, AlwaysHigh, CombineRule::Both);
        let either = CompositeCe::new(AlwaysHigh, AlwaysHigh, CombineRule::Either);
        assert_eq!(both.name(), "composite-both");
        assert_eq!(either.name(), "composite-either");
    }
}
