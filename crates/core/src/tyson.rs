use crate::estimate::{ConfidenceClass, ConfidenceEstimator, Estimate, EstimateCtx};
use perconf_bpred::{Snapshot, StateDigest};
use serde::{Deserialize, Serialize};

/// Tyson, Lick & Farrens' pattern-history confidence estimator: keep a
/// per-branch local history register and flag **high confidence** only
/// for a fixed set of strongly regular patterns (all taken, all
/// not-taken, or at most one deviation); every other pattern is low
/// confidence.
///
/// The actual direction needed to maintain the local history is
/// recovered from `predicted_taken XOR mispredicted`.
///
/// # Examples
///
/// ```
/// use perconf_core::{ConfidenceEstimator, EstimateCtx, TysonCe};
///
/// let mut ce = TysonCe::new(10, 8);
/// let ctx = EstimateCtx { pc: 0x40, history: 0, predicted_taken: true };
/// for _ in 0..8 {
///     let est = ce.estimate(&ctx);
///     ce.train(&ctx, est, false); // always taken
/// }
/// assert!(!ce.estimate(&ctx).is_low()); // "all taken" pattern
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TysonCe {
    local_hist: Vec<u16>,
    index_bits: u32,
    hist_bits: u32,
}

impl TysonCe {
    /// Creates an estimator with `2^index_bits` local histories of
    /// `hist_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=20` or `hist_bits`
    /// outside `2..=16`.
    #[must_use]
    pub fn new(index_bits: u32, hist_bits: u32) -> Self {
        assert!((1..=20).contains(&index_bits), "index bits must be 1..=20");
        assert!(
            (2..=16).contains(&hist_bits),
            "local history bits must be 2..=16"
        );
        Self {
            local_hist: vec![0; 1 << index_bits],
            index_bits,
            hist_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }

    /// The local pattern currently recorded for `pc`.
    #[must_use]
    pub fn pattern(&self, pc: u64) -> u16 {
        self.local_hist[self.index(pc)]
    }
}

impl Snapshot for TysonCe {
    perconf_bpred::snapshot_serde_body!();

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(u64::from(self.index_bits))
            .word(u64::from(self.hist_bits));
        for &h in &self.local_hist {
            d.word(u64::from(h));
        }
        d.finish()
    }
}

impl ConfidenceEstimator for TysonCe {
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate {
        let pattern = self.pattern(ctx.pc);
        let ones = pattern.count_ones();
        // Deviations from the dominant direction within the window.
        let dev = ones.min(self.hist_bits - ones) as i32;
        let high = dev <= 1;
        Estimate {
            raw: dev,
            class: if high {
                ConfidenceClass::High
            } else {
                ConfidenceClass::WeakLow
            },
        }
    }

    fn train(&mut self, ctx: &EstimateCtx, _est: Estimate, mispredicted: bool) {
        let actual_taken = ctx.predicted_taken != mispredicted;
        let i = self.index(ctx.pc);
        let mask = (1u16 << self.hist_bits) - 1;
        self.local_hist[i] = ((self.local_hist[i] << 1) | u16::from(actual_taken)) & mask;
    }

    fn name(&self) -> &'static str {
        "tyson"
    }

    fn storage_bits(&self) -> u64 {
        self.local_hist.len() as u64 * u64::from(self.hist_bits)
    }
}

impl perconf_bpred::FaultableState for TysonCe {
    fn state_bits(&self) -> u64 {
        self.local_hist.len() as u64 * u64::from(self.hist_bits)
    }

    fn flip_state_bit(&mut self, bit: u64) {
        let bit = bit % self.state_bits();
        let w = u64::from(self.hist_bits);
        // Bits below hist_bits keep the register within its mask.
        self.local_hist[(bit / w) as usize] ^= 1 << (bit % w) as u16;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pc: u64, predicted_taken: bool) -> EstimateCtx {
        EstimateCtx {
            pc,
            history: 0,
            predicted_taken,
        }
    }

    #[test]
    fn all_not_taken_pattern_is_high_confidence() {
        let mut ce = TysonCe::new(8, 8);
        let c = ctx(0x40, false);
        for _ in 0..8 {
            let est = ce.estimate(&c);
            ce.train(&c, est, false);
        }
        assert_eq!(ce.pattern(0x40), 0);
        assert!(!ce.estimate(&c).is_low());
    }

    #[test]
    fn one_deviation_is_still_high_confidence() {
        let mut ce = TysonCe::new(8, 8);
        let c = ctx(0x40, true);
        for i in 0..8 {
            let est = ce.estimate(&c);
            // One misprediction → one not-taken in an otherwise taken run.
            ce.train(&c, est, i == 3);
        }
        assert_eq!(ce.pattern(0x40).count_ones(), 7);
        assert!(!ce.estimate(&c).is_low());
    }

    #[test]
    fn irregular_pattern_is_low_confidence() {
        let mut ce = TysonCe::new(8, 8);
        let c = ctx(0x80, true);
        for i in 0..8 {
            let est = ce.estimate(&c);
            ce.train(&c, est, i % 2 == 0); // alternating directions
        }
        assert!(ce.estimate(&c).is_low());
        assert!(ce.estimate(&c).raw >= 2);
    }

    #[test]
    fn raw_counts_deviations() {
        let mut ce = TysonCe::new(8, 4);
        let c = ctx(0x10, true);
        // Pattern 0b1010: two of each → dev = 2.
        for taken in [true, false, true, false] {
            let est = ce.estimate(&c);
            ce.train(&c, est, !taken); // predicted_taken=true, so mispredicted = !taken
        }
        assert_eq!(ce.estimate(&c).raw, 2);
    }

    #[test]
    fn storage_bits() {
        assert_eq!(TysonCe::new(10, 10).storage_bits(), 1024 * 10);
    }
}
