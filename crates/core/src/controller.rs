use crate::estimate::{ConfidenceClass, ConfidenceEstimator, Estimate, EstimateCtx};
use perconf_bpred::{BranchPredictor, Snapshot, SnapshotError, StateDigest};
use serde::{Deserialize, Serialize, Value};

/// The front-end decision for one fetched branch: the (possibly
/// reversed) direction the pipeline will speculate down, plus
/// everything needed to train both structures at retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchDecision {
    /// Lookup context (pc, history snapshot, base prediction).
    pub ctx: EstimateCtx,
    /// Confidence assigned at fetch.
    pub estimate: Estimate,
    /// Direction actually speculated: the base prediction, reversed
    /// when the estimate was [`ConfidenceClass::StrongLow`].
    pub speculated_taken: bool,
}

impl BranchDecision {
    /// Returns `true` when the prediction was reversed.
    #[must_use]
    pub fn reversed(&self) -> bool {
        self.speculated_taken != self.ctx.predicted_taken
    }

    /// Returns `true` if this branch counts toward the gating counter
    /// (weakly low confident only: strongly-low branches are reversed
    /// instead of gated in the combined scheme).
    #[must_use]
    pub fn gates(&self) -> bool {
        self.estimate.class == ConfidenceClass::WeakLow
    }
}

/// Outcome of retiring one branch through the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrainOutcome {
    /// Whether the *underlying predictor* was wrong (what the
    /// estimator is trained on and what PVN/Spec measure).
    pub base_mispredicted: bool,
    /// Whether the direction actually speculated was wrong (what the
    /// pipeline pays for). Differs from `base_mispredicted` exactly
    /// when the prediction was reversed.
    pub speculated_mispredicted: bool,
}

/// Combines a branch predictor and a confidence estimator into the
/// single front-end structure the paper describes: predict, estimate
/// confidence, optionally reverse, and (at retirement) train both.
///
/// Reversal applies when the estimator classifies the prediction
/// [`ConfidenceClass::StrongLow`]; with a binary estimator
/// configuration that class never occurs and the controller reduces to
/// plain prediction + confidence.
///
/// The estimator is always trained with the **base** prediction's
/// correctness — the estimator and reverser are one hardware structure
/// observing the unreversed predictor, which is what lets a single
/// array serve both purposes (paper §5.3).
///
/// # Examples
///
/// ```
/// use perconf_bpred::baseline_bimodal_gshare;
/// use perconf_core::{PerceptronCe, PerceptronCeConfig, SpeculationController};
///
/// let mut ctl = SpeculationController::new(
///     baseline_bimodal_gshare(),
///     PerceptronCe::new(PerceptronCeConfig::combined()),
/// );
/// let d = ctl.decide(0x40_0000, 0b1011);
/// let _ = ctl.train(&d, /* actual_taken = */ true);
/// ```
#[derive(Debug, Clone)]
pub struct SpeculationController<P, C> {
    predictor: P,
    estimator: C,
}

impl<P: BranchPredictor, C: ConfidenceEstimator> SpeculationController<P, C> {
    /// Combines `predictor` and `estimator`.
    #[must_use]
    pub fn new(predictor: P, estimator: C) -> Self {
        Self {
            predictor,
            estimator,
        }
    }

    /// The underlying predictor.
    #[must_use]
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// The underlying estimator.
    #[must_use]
    pub fn estimator(&self) -> &C {
        &self.estimator
    }

    /// Fetch-stage lookup: predict the branch at `pc` under `history`,
    /// estimate confidence, and apply reversal if warranted.
    #[must_use]
    pub fn decide(&self, pc: u64, history: u64) -> BranchDecision {
        let predicted_taken = self.predictor.predict(pc, history);
        let ctx = EstimateCtx {
            pc,
            history,
            predicted_taken,
        };
        let estimate = self.estimator.estimate(&ctx);
        let speculated_taken = if estimate.class == ConfidenceClass::StrongLow {
            !predicted_taken
        } else {
            predicted_taken
        };
        BranchDecision {
            ctx,
            estimate,
            speculated_taken,
        }
    }

    /// Retirement-stage training with the architectural outcome.
    pub fn train(&mut self, decision: &BranchDecision, actual_taken: bool) -> TrainOutcome {
        let base_mispredicted = decision.ctx.predicted_taken != actual_taken;
        let speculated_mispredicted = decision.speculated_taken != actual_taken;
        self.predictor
            .train(decision.ctx.pc, decision.ctx.history, actual_taken);
        self.estimator
            .train(&decision.ctx, decision.estimate, base_mispredicted);
        TrainOutcome {
            base_mispredicted,
            speculated_mispredicted,
        }
    }
}

/// Snapshotting delegates to the two components rather than
/// serializing the whole struct: the controller is routinely
/// instantiated over boxed trait objects (`Box<dyn SimPredictor>`),
/// which cannot be rebuilt from a value tree — but an existing
/// instance can restore each component in place.
impl<P: Snapshot, C: Snapshot> Snapshot for SpeculationController<P, C> {
    fn save_state(&self) -> Value {
        Value::Object(vec![
            ("predictor".into(), self.predictor.save_state()),
            ("estimator".into(), self.estimator.save_state()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        let get = |name: &str| {
            if let Value::Object(fields) = state {
                fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
            } else {
                None
            }
        };
        let p = get("predictor")
            .ok_or_else(|| SnapshotError::msg("controller snapshot missing `predictor`"))?;
        let e = get("estimator")
            .ok_or_else(|| SnapshotError::msg("controller snapshot missing `estimator`"))?;
        self.predictor.restore_state(p)?;
        self.estimator.restore_state(e)?;
        Ok(())
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(self.predictor.state_digest())
            .word(self.estimator.state_digest());
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysHigh, PerceptronCe, PerceptronCeConfig};
    use perconf_bpred::Bimodal;

    #[test]
    fn no_reversal_without_strong_low() {
        let ctl = SpeculationController::new(Bimodal::new(8), AlwaysHigh);
        let d = ctl.decide(0x40, 0);
        assert!(!d.reversed());
        assert_eq!(d.speculated_taken, d.ctx.predicted_taken);
        assert!(!d.gates());
    }

    #[test]
    fn strong_low_reverses_the_prediction() {
        // Train the CE to flag this context strongly low.
        let mut ce = PerceptronCe::new(PerceptronCeConfig::combined());
        let ctx = EstimateCtx {
            pc: 0x40,
            history: 0,
            predicted_taken: false,
        };
        for _ in 0..60 {
            let est = ce.estimate(&ctx);
            ce.train(&ctx, est, true);
        }
        let ctl = SpeculationController::new(Bimodal::new(8), ce);
        let d = ctl.decide(0x40, 0);
        assert_eq!(d.estimate.class, ConfidenceClass::StrongLow);
        assert!(d.reversed());
        assert!(!d.gates(), "reversed branches do not gate");
    }

    #[test]
    fn train_outcome_distinguishes_base_and_speculated() {
        let mut ce = PerceptronCe::new(PerceptronCeConfig::combined());
        let ctx = EstimateCtx {
            pc: 0x40,
            history: 0,
            predicted_taken: false,
        };
        for _ in 0..60 {
            let est = ce.estimate(&ctx);
            ce.train(&ctx, est, true);
        }
        let mut ctl = SpeculationController::new(Bimodal::new(8), ce);
        let d = ctl.decide(0x40, 0);
        assert!(d.reversed());
        // Bimodal initialised weakly not-taken → base prediction false.
        // Actual outcome true → base mispredicted, reversal fixed it.
        let out = ctl.train(&d, true);
        assert!(out.base_mispredicted);
        assert!(!out.speculated_mispredicted);
    }

    #[test]
    fn training_reaches_the_predictor() {
        let mut ctl = SpeculationController::new(Bimodal::new(8), AlwaysHigh);
        for _ in 0..4 {
            let d = ctl.decide(0x80, 0);
            ctl.train(&d, true);
        }
        assert!(ctl.predictor().predict(0x80, 0));
    }
}
