//! Observability substrate for the perconf simulator stack.
//!
//! Three independent facilities, all designed around the same two
//! contracts:
//!
//! * **Zero overhead when disabled.** The event tracer is gated by the
//!   `trace` cargo feature — compiled out (the default), [`Tracer`] is
//!   a zero-sized type with empty inlined methods, so instrumentation
//!   call sites in the cycle loop vanish. The profiler is gated at
//!   runtime by one relaxed atomic load per [`Profiler::scope`] call.
//!   Counters are not collected at all during simulation: they are
//!   *derived* from state the simulator already keeps, materialized on
//!   demand into a [`CounterSnapshot`].
//!
//! * **Derived outputs never feed back.** Nothing in this crate is
//!   consulted by the simulator when making a decision, and none of it
//!   is part of the snapshot/digest state. A run with tracing and
//!   profiling active produces bit-identical results to a run without
//!   (pinned by tests in `perconf-pipeline` and by the CI determinism
//!   lane).
//!
//! The pieces:
//!
//! * [`Counters`] / [`CounterSnapshot`] — named monotonic counters and
//!   gauges grouped by subsystem (`fetch`, `rob`, `cache`,
//!   `predictor`, `estimator`, `gating`, …), snapshotable, diffable
//!   between any two points, and mergeable deterministically across
//!   scheduler workers.
//! * [`Tracer`] / [`TraceEvent`] — ring-buffered binary events
//!   (branch resolved, confidence bucket, gating stall begin/end,
//!   checkpoint write, retry) with a runtime [`TraceLevel`] gate,
//!   flushed to a checksummed `.pobs` container ([`pobs`]) that
//!   follows the `snapfile` header conventions, plus a JSON-lines
//!   export for ad-hoc analysis.
//! * [`Profiler`] / [`Scope`] — RAII spans around pipeline stages and
//!   experiment phases, aggregated into a self-time/child-time
//!   [`ProfileReport`].

#![forbid(unsafe_code)]

pub mod counters;
pub mod event;
pub mod pobs;
pub mod profile;
pub mod tracer;

pub use counters::{CounterEntry, CounterKind, CounterSnapshot, Counters};
pub use event::{TraceEvent, TraceLevel};
pub use pobs::{PobsError, TraceFile};
pub use profile::{ProfileReport, ProfileRow, Profiler, Scope};
pub use tracer::Tracer;
