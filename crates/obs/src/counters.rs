//! Hierarchical named counters.
//!
//! A [`Counters`] registry is a mutable builder: subsystems register
//! monotonic counters and level gauges under a `(group, name)` key.
//! Freezing it yields a [`CounterSnapshot`] — an immutable, sorted
//! list of entries that can be diffed against an earlier snapshot or
//! merged with snapshots from other workers.
//!
//! Determinism: entries are kept sorted by `(group, name)`, and every
//! combinator ([`CounterSnapshot::diff`], [`CounterSnapshot::merge`])
//! is a pure function of its inputs, so two workers producing the same
//! per-cell snapshots merge to the same bytes regardless of job count
//! or completion order.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How a counter combines across time and across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CounterKind {
    /// Monotonically increasing count. `diff` subtracts, `merge` sums.
    Counter,
    /// Instantaneous level. `diff` keeps the later value, `merge`
    /// keeps the maximum.
    Gauge,
}

/// One named value in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Subsystem group (`fetch`, `rob`, `cache`, …).
    pub group: String,
    /// Counter name within the group.
    pub name: String,
    /// Combination semantics.
    pub kind: CounterKind,
    /// Current value.
    pub value: u64,
}

/// Mutable registry of counters, grouped by subsystem.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    map: BTreeMap<(String, String), (CounterKind, u64)>,
}

impl Counters {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or accumulates into) a monotonic counter.
    pub fn counter(&mut self, group: &str, name: &str, value: u64) -> &mut Self {
        let e = self
            .map
            .entry((group.to_owned(), name.to_owned()))
            .or_insert((CounterKind::Counter, 0));
        e.1 += value;
        self
    }

    /// Registers (or overwrites) a level gauge.
    pub fn gauge(&mut self, group: &str, name: &str, value: u64) -> &mut Self {
        self.map.insert(
            (group.to_owned(), name.to_owned()),
            (CounterKind::Gauge, value),
        );
        self
    }

    /// Freezes the registry into an immutable, sorted snapshot.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            entries: self
                .map
                .iter()
                .map(|((group, name), (kind, value))| CounterEntry {
                    group: group.clone(),
                    name: name.clone(),
                    kind: *kind,
                    value: *value,
                })
                .collect(),
        }
    }
}

/// An immutable point-in-time view of a [`Counters`] registry, sorted
/// by `(group, name)`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Entries, sorted by `(group, name)`.
    entries: Vec<CounterEntry>,
}

impl CounterSnapshot {
    /// All entries in sorted order.
    #[must_use]
    pub fn entries(&self) -> &[CounterEntry] {
        &self.entries
    }

    /// Looks up one value.
    #[must_use]
    pub fn get(&self, group: &str, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.group == group && e.name == name)
            .map(|e| e.value)
    }

    /// The change from `earlier` to `self`: counters subtract
    /// (saturating, so a reset between snapshots reads as zero rather
    /// than wrapping), gauges keep the later value. Entries absent
    /// from `earlier` pass through unchanged.
    #[must_use]
    pub fn diff(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let value = match e.kind {
                    CounterKind::Counter => {
                        let before = earlier.get(&e.group, &e.name).unwrap_or(0);
                        e.value.saturating_sub(before)
                    }
                    CounterKind::Gauge => e.value,
                };
                CounterEntry { value, ..e.clone() }
            })
            .collect();
        CounterSnapshot { entries }
    }

    /// Merges snapshots from several workers into one: counters sum,
    /// gauges keep the maximum. The result depends only on the
    /// multiset of inputs, never on iteration order, so a sweep merged
    /// at any job count produces identical bytes. A key that appears
    /// with conflicting kinds keeps the kind of its first occurrence.
    #[must_use]
    pub fn merge<'a, I>(snaps: I) -> CounterSnapshot
    where
        I: IntoIterator<Item = &'a CounterSnapshot>,
    {
        let mut map: BTreeMap<(String, String), (CounterKind, u64)> = BTreeMap::new();
        for snap in snaps {
            for e in &snap.entries {
                let slot = map
                    .entry((e.group.clone(), e.name.clone()))
                    .or_insert((e.kind, 0));
                slot.1 = match slot.0 {
                    CounterKind::Counter => slot.1 + e.value,
                    CounterKind::Gauge => slot.1.max(e.value),
                };
            }
        }
        CounterSnapshot {
            entries: map
                .into_iter()
                .map(|((group, name), (kind, value))| CounterEntry {
                    group,
                    name,
                    kind,
                    value,
                })
                .collect(),
        }
    }

    /// Renders a grouped, aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut group = "";
        for e in &self.entries {
            if e.group != group {
                group = &e.group;
                let _ = writeln!(out, "[{group}]");
            }
            let tag = match e.kind {
                CounterKind::Counter => "",
                CounterKind::Gauge => " (gauge)",
            };
            let _ = writeln!(out, "  {:<width$}  {:>14}{tag}", e.name, e.value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counters {
        let mut c = Counters::new();
        c.counter("fetch", "uops", 100)
            .counter("cache", "l1_hits", 40)
            .gauge("rob", "occupancy", 12);
        c
    }

    #[test]
    fn snapshot_is_sorted_and_lookup_works() {
        let s = sample().snapshot();
        let keys: Vec<(&str, &str)> = s
            .entries()
            .iter()
            .map(|e| (e.group.as_str(), e.name.as_str()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(s.get("fetch", "uops"), Some(100));
        assert_eq!(s.get("fetch", "nonexistent"), None);
    }

    #[test]
    fn counter_accumulates_gauge_overwrites() {
        let mut c = sample();
        c.counter("fetch", "uops", 5).gauge("rob", "occupancy", 3);
        let s = c.snapshot();
        assert_eq!(s.get("fetch", "uops"), Some(105));
        assert_eq!(s.get("rob", "occupancy"), Some(3));
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_later_gauges() {
        let before = sample().snapshot();
        let mut later = sample();
        later
            .counter("fetch", "uops", 50)
            .gauge("rob", "occupancy", 7);
        let d = later.snapshot().diff(&before);
        assert_eq!(d.get("fetch", "uops"), Some(50));
        assert_eq!(d.get("cache", "l1_hits"), Some(0));
        assert_eq!(d.get("rob", "occupancy"), Some(7));
    }

    #[test]
    fn diff_saturates_across_a_reset() {
        let big = sample().snapshot();
        let mut small = Counters::new();
        small.counter("fetch", "uops", 10);
        let d = small.snapshot().diff(&big);
        assert_eq!(d.get("fetch", "uops"), Some(0));
    }

    #[test]
    fn merge_is_order_independent() {
        let a = sample().snapshot();
        let mut c2 = sample();
        c2.counter("fetch", "uops", 11)
            .gauge("rob", "occupancy", 99);
        let b = c2.snapshot();
        let m1 = CounterSnapshot::merge([&a, &b]);
        let m2 = CounterSnapshot::merge([&b, &a]);
        assert_eq!(m1, m2);
        assert_eq!(m1.get("fetch", "uops"), Some(100 + 111));
        assert_eq!(m1.get("rob", "occupancy"), Some(99));
    }

    #[test]
    fn merge_of_disjoint_groups_unions() {
        let a = sample().snapshot();
        let mut c = Counters::new();
        c.counter("gating", "gated_cycles", 8);
        let m = CounterSnapshot::merge([&a, &c.snapshot()]);
        assert_eq!(m.get("gating", "gated_cycles"), Some(8));
        assert_eq!(m.get("cache", "l1_hits"), Some(40));
    }

    #[test]
    fn render_groups_entries() {
        let r = sample().snapshot().render();
        assert!(r.contains("[cache]"));
        assert!(r.contains("[fetch]"));
        assert!(r.contains("occupancy"));
        assert!(r.contains("(gauge)"));
    }

    #[test]
    fn snapshot_survives_json_round_trip() {
        let s = sample().snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
