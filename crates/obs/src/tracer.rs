//! The event tracer: a cloneable handle over a bounded ring buffer.
//!
//! Two implementations share one API, selected by the `trace` cargo
//! feature:
//!
//! * feature **off** (default): [`Tracer`] is a zero-sized type whose
//!   methods are empty `#[inline]` bodies and whose
//!   [`enabled`](Tracer::enabled) is a constant `false`, so every
//!   instrumentation call site — including the argument construction
//!   behind an `enabled()` guard — compiles away;
//! * feature **on**: a shared ring buffer behind an `Arc`, gated at
//!   runtime by an atomic [`TraceLevel`]. When the ring is full the
//!   oldest events are overwritten and counted as dropped, so tracing
//!   a long run keeps the tail (the part that usually matters when
//!   diagnosing a drift or a stall) at bounded memory.
//!
//! Handles are cheap to clone and safe to share across the scheduler's
//! worker threads.

use crate::event::{TraceEvent, TraceLevel};

/// Default ring capacity in events (~1.6 MB encoded).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

#[cfg(feature = "trace")]
mod imp {
    use super::{TraceEvent, TraceLevel, DEFAULT_CAPACITY};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard};

    #[derive(Debug)]
    struct Ring {
        buf: VecDeque<TraceEvent>,
        cap: usize,
        dropped: u64,
    }

    #[derive(Debug)]
    struct Inner {
        level: AtomicU8,
        ring: Mutex<Ring>,
    }

    /// Ring-buffered structured event tracer (compiled in).
    #[derive(Debug, Clone)]
    pub struct Tracer {
        inner: Arc<Inner>,
    }

    impl Default for Tracer {
        fn default() -> Self {
            Self::with_capacity(DEFAULT_CAPACITY)
        }
    }

    fn level_from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Standard,
            _ => TraceLevel::Verbose,
        }
    }

    fn level_to_u8(l: TraceLevel) -> u8 {
        match l {
            TraceLevel::Off => 0,
            TraceLevel::Standard => 1,
            TraceLevel::Verbose => 2,
        }
    }

    impl Tracer {
        /// Whether this build carries the tracer at all.
        pub const COMPILED: bool = true;

        /// Creates a tracer with the default ring capacity, initially
        /// [`TraceLevel::Off`].
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Creates a tracer with a ring of `capacity` events, initially
        /// [`TraceLevel::Off`].
        #[must_use]
        pub fn with_capacity(capacity: usize) -> Self {
            Self {
                inner: Arc::new(Inner {
                    level: AtomicU8::new(0),
                    // The buffer grows on demand up to `cap`: a tracer
                    // that never records (level Off) costs no memory.
                    ring: Mutex::new(Ring {
                        buf: VecDeque::new(),
                        cap: capacity.max(1),
                        dropped: 0,
                    }),
                }),
            }
        }

        fn ring(&self) -> MutexGuard<'_, Ring> {
            // Survive poisoning: a panicked worker (the runner isolates
            // cell panics) must not take tracing down with it.
            match self.inner.ring.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            }
        }

        /// Sets the runtime level shared by all clones of this handle.
        pub fn set_level(&self, level: TraceLevel) {
            self.inner
                .level
                .store(level_to_u8(level), Ordering::Relaxed);
        }

        /// The current runtime level.
        #[must_use]
        pub fn level(&self) -> TraceLevel {
            level_from_u8(self.inner.level.load(Ordering::Relaxed))
        }

        /// Whether any event could currently be recorded.
        #[inline]
        #[must_use]
        pub fn enabled(&self) -> bool {
            self.inner.level.load(Ordering::Relaxed) != 0
        }

        /// Records `ev` if the runtime level admits it.
        #[inline]
        pub fn record(&self, ev: TraceEvent) {
            if self.level() < ev.level() {
                return;
            }
            let mut ring = self.ring();
            if ring.buf.len() == ring.cap {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(ev);
        }

        /// Takes all buffered events (oldest first) and the count of
        /// events dropped by ring overwrites, clearing both.
        #[must_use]
        pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
            let mut ring = self.ring();
            let events = ring.buf.drain(..).collect();
            let dropped = std::mem::take(&mut ring.dropped);
            (events, dropped)
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::{TraceEvent, TraceLevel};

    /// Ring-buffered structured event tracer (compiled **out**: this
    /// build has the `trace` feature disabled, so every method is an
    /// inlined no-op and the type is zero-sized).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Tracer;

    impl Tracer {
        /// Whether this build carries the tracer at all.
        pub const COMPILED: bool = false;

        /// Creates a tracer. A no-op handle in this build.
        #[inline]
        #[must_use]
        pub fn new() -> Self {
            Self
        }

        /// Creates a tracer. Capacity is irrelevant in this build.
        #[inline]
        #[must_use]
        pub fn with_capacity(_capacity: usize) -> Self {
            Self
        }

        /// No-op; the level is pinned at [`TraceLevel::Off`].
        #[inline]
        pub fn set_level(&self, _level: TraceLevel) {}

        /// Always [`TraceLevel::Off`].
        #[inline]
        #[must_use]
        pub fn level(&self) -> TraceLevel {
            TraceLevel::Off
        }

        /// Always `false` — and a constant, so `if tracer.enabled()`
        /// guards (and the event construction inside them) are dead
        /// code in this build.
        #[inline]
        #[must_use]
        pub fn enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline]
        pub fn record(&self, _ev: TraceEvent) {}

        /// Always empty.
        #[inline]
        #[must_use]
        pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
            (Vec::new(), 0)
        }
    }
}

pub use imp::Tracer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(TraceEvent::GateStallBegin { cycle: 1 });
        let (events, dropped) = t.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[cfg(feature = "trace")]
    mod live {
        use super::super::*;

        #[test]
        fn records_in_order_at_standard_level() {
            let t = Tracer::default();
            t.set_level(TraceLevel::Standard);
            for cycle in 0..5 {
                t.record(TraceEvent::GateStallBegin { cycle });
            }
            let (events, dropped) = t.drain();
            assert_eq!(events.len(), 5);
            assert_eq!(dropped, 0);
            assert_eq!(events[0], TraceEvent::GateStallBegin { cycle: 0 });
            assert_eq!(events[4], TraceEvent::GateStallBegin { cycle: 4 });
        }

        #[test]
        fn standard_level_filters_verbose_events() {
            let t = Tracer::default();
            t.set_level(TraceLevel::Standard);
            t.record(TraceEvent::ConfidenceBucket {
                cycle: 1,
                pc: 2,
                raw: 3,
                class: 0,
            });
            t.record(TraceEvent::GateStallBegin { cycle: 1 });
            let (events, _) = t.drain();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].kind_name(), "gate_stall_begin");
        }

        #[test]
        fn verbose_level_admits_everything() {
            let t = Tracer::default();
            t.set_level(TraceLevel::Verbose);
            t.record(TraceEvent::ConfidenceBucket {
                cycle: 1,
                pc: 2,
                raw: 3,
                class: 2,
            });
            assert_eq!(t.drain().0.len(), 1);
        }

        #[test]
        fn ring_overwrites_oldest_and_counts_drops() {
            let t = Tracer::with_capacity(3);
            t.set_level(TraceLevel::Standard);
            for cycle in 0..10 {
                t.record(TraceEvent::GateStallBegin { cycle });
            }
            let (events, dropped) = t.drain();
            assert_eq!(events.len(), 3);
            assert_eq!(dropped, 7);
            assert_eq!(events[0], TraceEvent::GateStallBegin { cycle: 7 });
            assert_eq!(events[2], TraceEvent::GateStallBegin { cycle: 9 });
        }

        #[test]
        fn clones_share_one_ring_and_level() {
            let t = Tracer::default();
            let u = t.clone();
            u.set_level(TraceLevel::Standard);
            assert!(t.enabled());
            t.record(TraceEvent::GateStallBegin { cycle: 1 });
            u.record(TraceEvent::GateStallEnd {
                cycle: 2,
                stalled: 1,
            });
            assert_eq!(t.drain().0.len(), 2);
            assert_eq!(u.drain().0.len(), 0);
        }

        #[test]
        fn drain_resets_state() {
            let t = Tracer::with_capacity(1);
            t.set_level(TraceLevel::Standard);
            t.record(TraceEvent::GateStallBegin { cycle: 1 });
            t.record(TraceEvent::GateStallBegin { cycle: 2 });
            let (_, dropped) = t.drain();
            assert_eq!(dropped, 1);
            let (events, dropped) = t.drain();
            assert!(events.is_empty());
            assert_eq!(dropped, 0);
        }
    }
}
