//! Trace event schema and its fixed-width binary encoding.
//!
//! Every event encodes to exactly [`RECORD_BYTES`] bytes — a one-byte
//! kind tag followed by three little-endian `u64` operands — so a
//! `.pobs` payload is a flat array of records, seekable by index and
//! cheap to append from the hot path.

use serde::{Deserialize, Serialize};

/// Runtime gate for the tracer. Levels are ordered: a tracer at
/// [`Standard`](TraceLevel::Standard) records everything except the
/// per-fetch-branch firehose, which needs
/// [`Verbose`](TraceLevel::Verbose).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Record nothing.
    Off,
    /// Per-resolution and per-phase events.
    Standard,
    /// Everything, including per-fetch confidence buckets.
    Verbose,
}

/// One structured simulator event.
///
/// Cycle numbers are the simulator's own clock; `pc` is the branch
/// instruction address. Events are diagnostics only — the simulator
/// never reads them back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A correct-path conditional branch resolved in the backend.
    BranchResolved {
        /// Resolution cycle.
        cycle: u64,
        /// Branch address.
        pc: u64,
        /// Whether resolution discovered a misprediction (and
        /// triggered a squash).
        mispredicted: bool,
    },
    /// The confidence estimate assigned to a branch at fetch.
    ConfidenceBucket {
        /// Fetch cycle.
        cycle: u64,
        /// Branch address.
        pc: u64,
        /// Raw estimator output (larger = less confident).
        raw: i64,
        /// Confidence class index: 0 = high, 1 = weak low, 2 = strong
        /// low (matches `perconf_core::ConfidenceClass::index`).
        class: u64,
    },
    /// Fetch gating engaged after running ungated.
    GateStallBegin {
        /// First gated cycle of the stall.
        cycle: u64,
    },
    /// Fetch gating released.
    GateStallEnd {
        /// First ungated cycle after the stall.
        cycle: u64,
        /// Consecutive cycles fetch was gated.
        stalled: u64,
    },
    /// A mid-run checkpoint was written by the experiment driver.
    CheckpointWrite {
        /// Retired-uop count at the checkpoint.
        retired: u64,
        /// Driver phase (0 = warmup, 1 = measured run).
        phase: u64,
    },
    /// The sweep runner retried a failed cell.
    Retry {
        /// FNV-1a 64 hash of the cell key.
        key: u64,
        /// 1-based retry attempt number.
        attempt: u64,
    },
}

/// Encoded size of one event record.
pub const RECORD_BYTES: usize = 25;

/// Decoding failure for one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRecord {
    /// The unknown kind tag encountered.
    pub kind: u8,
}

impl std::fmt::Display for BadRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown trace record kind {:#04x}", self.kind)
    }
}

impl std::error::Error for BadRecord {}

impl TraceEvent {
    /// The minimum [`TraceLevel`] at which this event is recorded.
    #[must_use]
    pub fn level(&self) -> TraceLevel {
        match self {
            TraceEvent::ConfidenceBucket { .. } => TraceLevel::Verbose,
            _ => TraceLevel::Standard,
        }
    }

    /// Short stable name of the event kind (JSONL `kind` field and
    /// `repro obs` summaries).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::BranchResolved { .. } => "branch_resolved",
            TraceEvent::ConfidenceBucket { .. } => "confidence_bucket",
            TraceEvent::GateStallBegin { .. } => "gate_stall_begin",
            TraceEvent::GateStallEnd { .. } => "gate_stall_end",
            TraceEvent::CheckpointWrite { .. } => "checkpoint_write",
            TraceEvent::Retry { .. } => "retry",
        }
    }

    /// Encodes to the fixed-width record format.
    #[must_use]
    #[allow(clippy::cast_sign_loss)]
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let (kind, a, b, c): (u8, u64, u64, u64) = match *self {
            TraceEvent::BranchResolved {
                cycle,
                pc,
                mispredicted,
            } => (0, cycle, pc, u64::from(mispredicted)),
            TraceEvent::ConfidenceBucket {
                cycle,
                pc,
                raw,
                class,
            } => {
                // Pack the signed raw value and the class index into
                // one operand: bits 0–1 the class, the rest `raw << 2`.
                (1, cycle, pc, ((raw << 2) as u64) | (class & 0b11))
            }
            TraceEvent::GateStallBegin { cycle } => (2, cycle, 0, 0),
            TraceEvent::GateStallEnd { cycle, stalled } => (3, cycle, stalled, 0),
            TraceEvent::CheckpointWrite { retired, phase } => (4, retired, phase, 0),
            TraceEvent::Retry { key, attempt } => (5, key, attempt, 0),
        };
        let mut out = [0u8; RECORD_BYTES];
        out[0] = kind;
        out[1..9].copy_from_slice(&a.to_le_bytes());
        out[9..17].copy_from_slice(&b.to_le_bytes());
        out[17..25].copy_from_slice(&c.to_le_bytes());
        out
    }

    /// Decodes one fixed-width record.
    ///
    /// # Errors
    ///
    /// Returns [`BadRecord`] when the kind tag is unknown (a newer
    /// writer or corruption that slipped past the container digest).
    #[allow(clippy::cast_possible_wrap)]
    pub fn decode(rec: &[u8; RECORD_BYTES]) -> Result<TraceEvent, BadRecord> {
        let a = u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes"));
        let b = u64::from_le_bytes(rec[9..17].try_into().expect("8 bytes"));
        let c = u64::from_le_bytes(rec[17..25].try_into().expect("8 bytes"));
        Ok(match rec[0] {
            0 => TraceEvent::BranchResolved {
                cycle: a,
                pc: b,
                mispredicted: c != 0,
            },
            1 => TraceEvent::ConfidenceBucket {
                cycle: a,
                pc: b,
                raw: (c as i64) >> 2,
                class: c & 0b11,
            },
            2 => TraceEvent::GateStallBegin { cycle: a },
            3 => TraceEvent::GateStallEnd {
                cycle: a,
                stalled: b,
            },
            4 => TraceEvent::CheckpointWrite {
                retired: a,
                phase: b,
            },
            5 => TraceEvent::Retry { key: a, attempt: b },
            kind => return Err(BadRecord { kind }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<TraceEvent> {
        vec![
            TraceEvent::BranchResolved {
                cycle: 7,
                pc: 0x40_1000,
                mispredicted: true,
            },
            TraceEvent::ConfidenceBucket {
                cycle: 8,
                pc: 0x40_1004,
                raw: -137,
                class: 2,
            },
            TraceEvent::ConfidenceBucket {
                cycle: 9,
                pc: 0x40_1008,
                raw: 22,
                class: 0,
            },
            TraceEvent::GateStallBegin { cycle: 10 },
            TraceEvent::GateStallEnd {
                cycle: 15,
                stalled: 5,
            },
            TraceEvent::CheckpointWrite {
                retired: 50_000,
                phase: 1,
            },
            TraceEvent::Retry {
                key: 0xdead_beef,
                attempt: 2,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_kind() {
        for ev in corpus() {
            let rec = ev.encode();
            assert_eq!(TraceEvent::decode(&rec).unwrap(), ev);
        }
    }

    #[test]
    fn negative_raw_survives_packing() {
        let ev = TraceEvent::ConfidenceBucket {
            cycle: 1,
            pc: 2,
            raw: i64::from(i32::MIN),
            class: 1,
        };
        assert_eq!(TraceEvent::decode(&ev.encode()).unwrap(), ev);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut rec = corpus()[0].encode();
        rec[0] = 0xFF;
        assert_eq!(
            TraceEvent::decode(&rec).unwrap_err(),
            BadRecord { kind: 0xFF }
        );
    }

    #[test]
    fn levels_are_ordered_and_bucket_is_verbose() {
        assert!(TraceLevel::Off < TraceLevel::Standard);
        assert!(TraceLevel::Standard < TraceLevel::Verbose);
        for ev in corpus() {
            let expected = matches!(ev, TraceEvent::ConfidenceBucket { .. });
            assert_eq!(ev.level() == TraceLevel::Verbose, expected);
        }
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<&str> = corpus().iter().map(TraceEvent::kind_name).collect();
        names.dedup();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
