//! The `.pobs` on-disk trace container.
//!
//! Follows the `snapfile` conventions from the experiments crate —
//! magic + version + FNV-1a-64 payload digest + length header, atomic
//! temp-file-and-rename writes — applied to a flat array of
//! fixed-width binary event records instead of a JSON tree:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"POBS0001"
//! 8       4     format version, u32 LE (currently 1)
//! 12      8     FNV-1a 64 digest of the payload bytes, u64 LE
//! 20      8     payload length in bytes, u64 LE
//! 28      8     event count, u64 LE
//! 36      8     events dropped by ring overwrites, u64 LE
//! 44      n     payload: count × 25-byte records (see `event`)
//! ```
//!
//! A half-written or bit-rotted trace is *detected* ([`PobsError`]),
//! never silently decoded into nonsense.

use crate::event::{TraceEvent, RECORD_BYTES};
use std::fmt;
use std::io::{self, Read as _, Write as _};
use std::path::Path;

/// Leading magic of every trace file.
pub const MAGIC: [u8; 8] = *b"POBS0001";

/// Current format version.
pub const VERSION: u32 = 1;

const HEADER_BYTES: usize = 44;

/// Why a trace file could not be read or written.
#[derive(Debug)]
pub enum PobsError {
    /// The underlying read or write failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The header names an unsupported format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file ends before the header-declared payload length, or the
    /// payload length disagrees with the event count.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload digest does not match the header.
    DigestMismatch {
        /// Digest recorded in the header.
        stored: u64,
        /// Digest of the payload as read.
        computed: u64,
    },
    /// A record carries an unknown kind tag.
    Malformed(String),
}

impl fmt::Display for PobsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PobsError::Io(e) => write!(f, "i/o error: {e}"),
            PobsError::BadMagic { found } => {
                write!(f, "not a trace file (magic {found:02x?})")
            }
            PobsError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported trace version {found} (reader knows {VERSION})"
                )
            }
            PobsError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated trace: header promises {expected} payload bytes, file has {got}"
                )
            }
            PobsError::DigestMismatch { stored, computed } => {
                write!(
                    f,
                    "trace payload digest mismatch: header {stored:#018x}, computed {computed:#018x}"
                )
            }
            PobsError::Malformed(m) => write!(f, "malformed trace payload: {m}"),
        }
    }
}

impl std::error::Error for PobsError {}

impl From<io::Error> for PobsError {
    fn from(e: io::Error) -> Self {
        PobsError::Io(e)
    }
}

/// FNV-1a 64 over the payload bytes (same family as the simulator's
/// state digests and the snapfile container).
#[must_use]
pub fn payload_digest(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A decoded trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// Events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrites before the flush.
    pub dropped: u64,
}

impl TraceFile {
    /// Renders the events as JSON lines, one event object per line,
    /// each tagged with its `kind` name.
    ///
    /// # Errors
    ///
    /// Returns [`PobsError::Malformed`] if an event fails to
    /// serialize (not expected for any [`TraceEvent`]).
    pub fn to_jsonl(&self) -> Result<String, PobsError> {
        let mut out = String::new();
        for ev in &self.events {
            let body =
                serde_json::to_string(ev).map_err(|e| PobsError::Malformed(e.to_string()))?;
            // The derive encodes an enum as {"Variant": {fields}}; wrap
            // it with a flat `kind` tag so JSONL consumers can filter
            // without knowing the Rust variant names.
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"event\":{body}}}\n",
                ev.kind_name()
            ));
        }
        Ok(out)
    }

    /// Counts events per kind, sorted by kind name.
    #[must_use]
    pub fn counts_by_kind(&self) -> Vec<(&'static str, u64)> {
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for ev in &self.events {
            *counts.entry(ev.kind_name()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Writes `events` to `path` atomically: encode, digest, write to a
/// sibling temp file, fsync, rename over the destination.
///
/// # Errors
///
/// Returns [`PobsError::Io`] on any filesystem failure.
pub fn write(path: &Path, events: &[TraceEvent], dropped: u64) -> Result<(), PobsError> {
    let mut payload = Vec::with_capacity(events.len() * RECORD_BYTES);
    for ev in events {
        payload.extend_from_slice(&ev.encode());
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("pobs.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&MAGIC)?;
        f.write_all(&VERSION.to_le_bytes())?;
        f.write_all(&payload_digest(&payload).to_le_bytes())?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(&(events.len() as u64).to_le_bytes())?;
        f.write_all(&dropped.to_le_bytes())?;
        f.write_all(&payload)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a trace back, verifying magic, version, length, digest and
/// record encoding.
///
/// # Errors
///
/// Any [`PobsError`] variant; all of them mean the trace file is
/// unusable.
pub fn read(path: &Path) -> Result<TraceFile, PobsError> {
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; HEADER_BYTES];
    f.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PobsError::Truncated {
                expected: HEADER_BYTES as u64,
                got: std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
            }
        } else {
            PobsError::Io(e)
        }
    })?;
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&header[..8]);
    if magic != MAGIC {
        return Err(PobsError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(PobsError::UnsupportedVersion { found: version });
    }
    let stored = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
    let count = u64::from_le_bytes(header[28..36].try_into().expect("8 bytes"));
    let dropped = u64::from_le_bytes(header[36..44].try_into().expect("8 bytes"));
    if len != count * RECORD_BYTES as u64 {
        return Err(PobsError::Malformed(format!(
            "payload length {len} disagrees with event count {count}"
        )));
    }
    let mut payload = Vec::new();
    f.read_to_end(&mut payload)?;
    if (payload.len() as u64) != len {
        return Err(PobsError::Truncated {
            expected: len,
            got: payload.len() as u64,
        });
    }
    let computed = payload_digest(&payload);
    if computed != stored {
        return Err(PobsError::DigestMismatch { stored, computed });
    }
    let mut events = Vec::with_capacity(count as usize);
    for chunk in payload.chunks_exact(RECORD_BYTES) {
        let rec: &[u8; RECORD_BYTES] = chunk.try_into().expect("exact chunk");
        events.push(TraceEvent::decode(rec).map_err(|e| PobsError::Malformed(e.to_string()))?);
    }
    Ok(TraceFile { events, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("perconf-pobs-{name}-{}.pobs", std::process::id()))
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::BranchResolved {
                cycle: 10,
                pc: 0x1000,
                mispredicted: false,
            },
            TraceEvent::ConfidenceBucket {
                cycle: 11,
                pc: 0x1004,
                raw: -42,
                class: 1,
            },
            TraceEvent::GateStallBegin { cycle: 12 },
            TraceEvent::GateStallEnd {
                cycle: 20,
                stalled: 8,
            },
        ]
    }

    #[test]
    fn round_trips_events_and_dropped_count() {
        let p = tmp("roundtrip");
        write(&p, &sample(), 3).unwrap();
        let back = read(&p).unwrap();
        assert_eq!(back.events, sample());
        assert_eq!(back.dropped, 3);
        assert!(!p.with_extension("pobs.tmp").exists());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn empty_trace_round_trips() {
        let p = tmp("empty");
        write(&p, &[], 0).unwrap();
        let back = read(&p).unwrap();
        assert!(back.events.is_empty());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn rejects_wrong_magic() {
        let p = tmp("magic");
        write(&p, &sample(), 0).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(read(&p), Err(PobsError::BadMagic { .. })));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn rejects_unknown_version() {
        let p = tmp("version");
        write(&p, &sample(), 0).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[8] = 0xEE;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            read(&p),
            Err(PobsError::UnsupportedVersion { .. })
        ));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn detects_payload_bit_rot() {
        let p = tmp("bitrot");
        write(&p, &sample(), 0).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(read(&p), Err(PobsError::DigestMismatch { .. })));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn detects_truncation() {
        let p = tmp("truncated");
        write(&p, &sample(), 0).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(read(&p), Err(PobsError::Truncated { .. })));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn jsonl_export_tags_kinds() {
        let tf = TraceFile {
            events: sample(),
            dropped: 0,
        };
        let jsonl = tf.to_jsonl().unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"kind\":\"branch_resolved\""));
        assert!(lines[1].contains("\"raw\":-42"));
    }

    #[test]
    fn counts_by_kind_sums_to_event_total() {
        let tf = TraceFile {
            events: sample(),
            dropped: 0,
        };
        let counts = tf.counts_by_kind();
        let total: u64 = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
        assert!(counts
            .iter()
            .any(|&(k, n)| k == "gate_stall_begin" && n == 1));
    }
}
