//! RAII phase profiling.
//!
//! A [`Profiler`] hands out [`Scope`] guards around pipeline stages
//! and experiment phases. Each scope records wall time into a shared
//! table keyed by span name; nested scopes on the same thread
//! attribute their time to the parent's *child* time, so the report
//! can show both total (inclusive) and self (exclusive) time per span.
//!
//! Cost model: when disabled (the default), [`Profiler::scope`] is one
//! relaxed atomic load and returns an inert guard — no clock read, no
//! allocation, no lock. When enabled, each scope costs two `Instant`
//! reads and one mutex-protected table update at drop; that is a
//! diagnostic mode, not a hot-path default.
//!
//! Handles are cloneable and shareable across worker threads; the
//! nesting stack is thread-local, so spans on different workers nest
//! independently while aggregating into one table.

// The profiler is the designated wall-time module (see perconf-lint's
// nondeterminism-sources allowlist); its output never feeds results.
#![allow(clippy::disallowed_methods)]

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    calls: u64,
    total: Duration,
    child: Duration,
}

#[derive(Debug, Default)]
struct Inner {
    enabled: AtomicBool,
    rows: Mutex<BTreeMap<&'static str, Acc>>,
}

thread_local! {
    /// Per-thread stack of open spans: each frame accumulates the
    /// wall time of its direct children.
    static STACK: RefCell<Vec<Duration>> = const { RefCell::new(Vec::new()) };
}

/// Shared profiling registry. Clones share one table and one enable
/// flag.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Arc<Inner>,
}

impl Profiler {
    /// Creates a disabled profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns span collection on or off for every clone of this handle.
    pub fn enable(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently collected.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Opens a span named `name`. The span closes (and records) when
    /// the returned guard drops. Disabled profilers return an inert
    /// guard after a single atomic load.
    #[inline]
    pub fn scope(&self, name: &'static str) -> Scope {
        if !self.enabled() {
            return Scope { active: None };
        }
        STACK.with(|s| s.borrow_mut().push(Duration::ZERO));
        Scope {
            active: Some(ActiveScope {
                profiler: self.clone(),
                name,
                start: Instant::now(),
            }),
        }
    }

    /// Clears the table (the enable flag is untouched).
    pub fn reset(&self) {
        self.rows().clear();
    }

    fn rows(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Acc>> {
        match self.inner.rows.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    /// Snapshot of everything recorded so far, sorted by total time
    /// descending (name as tie-break, so equal-time reports render
    /// identically).
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let mut rows: Vec<ProfileRow> = self
            .rows()
            .iter()
            .map(|(name, acc)| ProfileRow {
                name: (*name).to_owned(),
                calls: acc.calls,
                total_s: acc.total.as_secs_f64(),
                self_s: acc.total.saturating_sub(acc.child).as_secs_f64(),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.total_s
                .partial_cmp(&a.total_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        ProfileReport { rows }
    }
}

struct ActiveScope {
    profiler: Profiler,
    name: &'static str,
    start: Instant,
}

/// RAII span guard returned by [`Profiler::scope`].
#[must_use = "a span records when the guard drops; dropping it immediately measures nothing"]
pub struct Scope {
    active: Option<ActiveScope>,
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let elapsed = a.start.elapsed();
        let child = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().unwrap_or(Duration::ZERO);
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            child
        });
        let mut rows = a.profiler.rows();
        let acc = rows.entry(a.name).or_default();
        acc.calls += 1;
        acc.total += elapsed;
        acc.child += child;
    }
}

/// One span in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// Span name.
    pub name: String,
    /// Number of times the span was entered.
    pub calls: u64,
    /// Inclusive wall time in seconds.
    pub total_s: f64,
    /// Exclusive wall time (total minus time in nested spans) in
    /// seconds.
    pub self_s: f64,
}

/// Aggregated span table, sorted by total time descending.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Rows, hottest first.
    pub rows: Vec<ProfileRow>,
}

impl ProfileReport {
    /// Renders an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let width = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<width$}  {:>10}  {:>12}  {:>12}",
            "span", "calls", "total (s)", "self (s)"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<width$}  {:>10}  {:>12.6}  {:>12.6}",
                r.name, r.calls, r.total_s, r.self_s
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(d: Duration) {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::new();
        {
            let _s = p.scope("never");
        }
        assert!(p.report().rows.is_empty());
    }

    #[test]
    fn enabled_profiler_counts_calls() {
        let p = Profiler::new();
        p.enable(true);
        for _ in 0..3 {
            let _s = p.scope("work");
        }
        let rep = p.report();
        assert_eq!(rep.rows.len(), 1);
        assert_eq!(rep.rows[0].name, "work");
        assert_eq!(rep.rows[0].calls, 3);
    }

    #[test]
    fn nested_spans_split_self_and_child_time() {
        let p = Profiler::new();
        p.enable(true);
        {
            let _outer = p.scope("outer");
            spin(Duration::from_millis(5));
            {
                let _inner = p.scope("inner");
                spin(Duration::from_millis(10));
            }
        }
        let rep = p.report();
        let outer = rep.rows.iter().find(|r| r.name == "outer").unwrap();
        let inner = rep.rows.iter().find(|r| r.name == "inner").unwrap();
        assert!(outer.total_s >= inner.total_s);
        // The outer span spent most of its time inside `inner`, so its
        // self time must be well below its total.
        assert!(outer.self_s < outer.total_s * 0.9);
        assert!(inner.self_s > 0.0);
    }

    #[test]
    fn clones_share_the_table() {
        let p = Profiler::new();
        p.enable(true);
        let q = p.clone();
        {
            let _s = q.scope("shared");
        }
        assert_eq!(p.report().rows[0].calls, 1);
    }

    #[test]
    fn reset_clears_rows_but_not_enablement() {
        let p = Profiler::new();
        p.enable(true);
        {
            let _s = p.scope("x");
        }
        p.reset();
        assert!(p.report().rows.is_empty());
        assert!(p.enabled());
    }

    #[test]
    fn spans_on_worker_threads_aggregate() {
        let p = Profiler::new();
        p.enable(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = p.clone();
                s.spawn(move || {
                    let _s = q.scope("worker");
                });
            }
        });
        assert_eq!(p.report().rows[0].calls, 4);
    }

    #[test]
    fn report_serializes_to_json() {
        let p = Profiler::new();
        p.enable(true);
        {
            let _s = p.scope("j");
        }
        let json = serde_json::to_string(&p.report()).unwrap();
        assert!(json.contains("\"name\":\"j\""));
    }

    #[test]
    fn render_aligns_columns() {
        let p = Profiler::new();
        p.enable(true);
        {
            let _s = p.scope("alpha");
        }
        let text = p.report().render();
        assert!(text.contains("span"));
        assert!(text.contains("alpha"));
    }
}
