use crate::cache::MemHierarchy;
use crate::config::PipelineConfig;
use crate::stats::SimStats;
use perconf_bpred::{digest_value, BranchPredictor, SimPredictor, Snapshot, SnapshotError};
use perconf_core::{
    AlwaysHigh, BranchDecision, ConfidenceEstimator, GateCounter, SimEstimator,
    SpeculationController,
};
use perconf_metrics::DensityPair;
use perconf_obs::{CounterSnapshot, Counters, Profiler, TraceEvent, Tracer};
use perconf_workload::{Uop, UopKind, WorkloadConfig, WorkloadGenerator};
use serde::{Deserialize, Serialize, Value};
use std::collections::{BTreeSet, VecDeque};

/// The boxed predictor + estimator combination the simulator drives.
///
/// Components are [`SimPredictor`]/[`SimEstimator`] — predictor or
/// estimator *plus* [`Snapshot`] — so a whole simulation can be
/// checkpointed and restored mid-run.
pub type Controller = SpeculationController<Box<dyn SimPredictor>, Box<dyn SimEstimator>>;

/// A recoverable simulator failure.
///
/// The simulator's internal invariants are checked in release builds
/// too, but through the `try_*` entry points they surface as values
/// instead of panics, so a sweep driver can mark the offending cell
/// failed and keep going. The panicking entry points ([`Simulation::run`],
/// [`Simulation::warmup`], [`Simulation::step`]) are thin wrappers that
/// `panic!` on these same errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// Retirement stopped making progress (a leaked gate counter or a
    /// dependence cycle would otherwise hang the run forever).
    Stalled {
        /// Correct-path uops retired when progress stopped.
        retired: u64,
        /// The retirement target of the current run call.
        target: u64,
        /// Cycle at which the deadline expired.
        cycle: u64,
    },
    /// Fetch tried to claim a sequence-status slot still owned by a
    /// live in-flight uop — the in-flight window exceeded
    /// `STATUS_WINDOW` and completion tracking would silently corrupt.
    StatusWindowReuse {
        /// Sequence number that wanted the slot.
        seq: u64,
        /// Live occupant's sequence number.
        occupant: u64,
    },
    /// The reorder buffer grew past its configured capacity.
    RobOverflow {
        /// Observed occupancy.
        len: usize,
        /// Configured `rob_size`.
        cap: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                retired,
                target,
                cycle,
            } => write!(
                f,
                "simulation stalled: retired {retired}/{target} at cycle {cycle}"
            ),
            SimError::StatusWindowReuse { seq, occupant } => write!(
                f,
                "status-window slot reuse: seq {seq} would evict live seq {occupant}"
            ),
            SimError::RobOverflow { len, cap } => {
                write!(f, "ROB overflow: {len} entries in a {cap}-entry buffer")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Sequence-status window size; must exceed the maximum *sequence
/// span* of live in-flight uops by a wide margin so live slots are
/// never reused. Note the span is much larger than the in-flight
/// *count* (≤ `frontend_capacity + rob_size` ≈ 264): sequence numbers
/// are also burned by squashed wrong-path uops, so while a ROB head
/// stalls on a long dependence chain, repeated mispredict/squash/
/// refill rounds behind it can advance `next_seq` by thousands.
/// Configs that exceed the window anyway are caught by the fetch-time
/// [`SimError::StatusWindowReuse`] check, not corrupted.
const STATUS_WINDOW: usize = 1 << 14;
const STATUS_MASK: usize = STATUS_WINDOW - 1;

/// Dependence-distance ring mapping recent correct-path uop indices to
/// global sequence numbers. Must exceed the generator's maximum
/// dependence distance.
const CP_RING: usize = 128;
const CP_MASK: usize = CP_RING - 1;

/// Calendar-ring span for pending completions: one bucket per future
/// cycle. Sized above the worst stock latency chain (L1 + L2 + memory
/// = 195 cycles); issues due even further out (hand-built configs with
/// huge `mem_latency`) spill to the unordered `complete_far` overflow
/// list, which is scanned per cycle but empty on every stock config.
const COMPLETE_RING: usize = 256;
const COMPLETE_MASK: usize = COMPLETE_RING - 1;

/// Sentinel for "no producer" in the arena's dense `prod1`/`prod2`
/// columns. Safe: real sequence numbers are allocated from 0 and a run
/// can never reach `u64::MAX`, and `producers` never yields it (the
/// cp-ring maps its own `u64::MAX` fill to `None`).
const NO_PROD: u64 = u64::MAX;

/// Wakeup table size (slots indexed by producer seq & `WAIT_MASK`).
/// Collisions are benign: a wake is only a hint to revalidate, and a
/// spuriously woken entry re-parks on its still-pending producer.
const WAIT_SLOTS: usize = 1 << 12;
const WAIT_MASK: usize = WAIT_SLOTS - 1;

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct SlotStatus {
    seq: u64,
    completed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Int,
    Mem,
    Fp,
}

fn class_of(kind: UopKind) -> Class {
    match kind {
        UopKind::IntAlu | UopKind::IntMul | UopKind::Branch => Class::Int,
        UopKind::Load | UopKind::Store => Class::Mem,
        UopKind::Fp => Class::Fp,
    }
}

/// One waiting (dispatched, un-issued) uop, as tracked by the
/// event-driven scheduler. Self-contained so neither the issue scan
/// nor a wakeup chases arena columns: the class picks the unit pool,
/// and the producer fields memoize readiness in place — producer
/// completion is monotone (squash marks the status slot completed
/// too), so once a producer is observed complete its field is cleared
/// to [`NO_PROD`] and never probed again. An entry lives either on
/// the `ready` list or parked in one `waiters` slot, keyed by the
/// first producer it is still missing; `seq` lets `ready` sort into
/// program order and validates parked entries against slot reuse.
#[derive(Debug, Clone, Copy)]
struct SchedEnt {
    idx: u32,
    cls: u8,
    seq: u64,
    p1: u64,
    p2: u64,
}

/// The snapshot (and pre-arena in-memory) representation of one
/// in-flight uop. The live machine keeps this data in the
/// structure-of-arrays [`Arena`]; this struct survives as the
/// *canonical serialized form* — snapshots store `Vec<Inflight>` in
/// queue order, which keeps the on-disk format and every digest
/// independent of arena slot assignment.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Inflight {
    seq: u64,
    uop: Uop,
    wrong_path: bool,
    decision: Option<BranchDecision>,
    prod1: Option<u64>,
    prod2: Option<u64>,
    /// Earliest dispatch cycle (front-end pipe exit).
    arrival: u64,
    issued: bool,
    completed: bool,
    complete_at: u64,
    fetched_at: u64,
}

/// Structure-of-arrays slab for in-flight uops.
///
/// The cycle loop walks the ROB several times per cycle touching only
/// a few fields per pass (`issued`/`completed`/`complete_at` in
/// complete-and-resolve, plus `prod*`/`kind` in issue). With the old
/// array-of-structs `VecDeque<Inflight>` every pass dragged whole
/// ~160-byte entries through the cache and every dispatch/squash
/// copied them; here each pass streams over dense parallel columns and
/// the queues move 4-byte slot indices instead.
///
/// Slots are recycled through a free list, so slot numbers depend on
/// allocation history — which is why *behaviour* must never depend on
/// slot order. It cannot: program order lives exclusively in the
/// `frontend`/`rob` index queues, and snapshots serialize entries in
/// queue order via [`Inflight`]. The
/// `digest_is_invariant_under_arena_slot_permutation` test pins that.
#[derive(Debug)]
struct Arena {
    seq: Vec<u64>,
    complete_at: Vec<u64>,
    arrival: Vec<u64>,
    fetched_at: Vec<u64>,
    /// Producer seq or [`NO_PROD`].
    prod1: Vec<u64>,
    prod2: Vec<u64>,
    kind: Vec<UopKind>,
    issued: Vec<bool>,
    completed: Vec<bool>,
    wrong_path: Vec<bool>,
    uop: Vec<Uop>,
    decision: Vec<Option<BranchDecision>>,
    /// Recycled slot indices (LIFO).
    free: Vec<u32>,
}

impl Arena {
    fn with_capacity(n: usize) -> Self {
        Self {
            seq: Vec::with_capacity(n),
            complete_at: Vec::with_capacity(n),
            arrival: Vec::with_capacity(n),
            fetched_at: Vec::with_capacity(n),
            prod1: Vec::with_capacity(n),
            prod2: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            issued: Vec::with_capacity(n),
            completed: Vec::with_capacity(n),
            wrong_path: Vec::with_capacity(n),
            uop: Vec::with_capacity(n),
            decision: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
        }
    }

    fn insert(&mut self, e: Inflight) -> u32 {
        let p1 = e.prod1.unwrap_or(NO_PROD);
        let p2 = e.prod2.unwrap_or(NO_PROD);
        if let Some(i) = self.free.pop() {
            let s = i as usize;
            self.seq[s] = e.seq;
            self.complete_at[s] = e.complete_at;
            self.arrival[s] = e.arrival;
            self.fetched_at[s] = e.fetched_at;
            self.prod1[s] = p1;
            self.prod2[s] = p2;
            self.kind[s] = e.uop.kind;
            self.issued[s] = e.issued;
            self.completed[s] = e.completed;
            self.wrong_path[s] = e.wrong_path;
            self.uop[s] = e.uop;
            self.decision[s] = e.decision;
            i
        } else {
            let i = self.seq.len() as u32;
            self.seq.push(e.seq);
            self.complete_at.push(e.complete_at);
            self.arrival.push(e.arrival);
            self.fetched_at.push(e.fetched_at);
            self.prod1.push(p1);
            self.prod2.push(p2);
            self.kind.push(e.uop.kind);
            self.issued.push(e.issued);
            self.completed.push(e.completed);
            self.wrong_path.push(e.wrong_path);
            self.uop.push(e.uop);
            self.decision.push(e.decision);
            i
        }
    }

    fn remove(&mut self, i: u32) {
        // Freed slots read as "dead": the completion ring validates
        // stale (slot, seq) tickets against `completed`, so a squashed
        // uop must never look like a pending completion.
        self.completed[i as usize] = true;
        self.decision[i as usize] = None;
        self.free.push(i);
    }

    /// Rebuilds the canonical serialized form of slot `i`.
    fn extract(&self, i: u32) -> Inflight {
        let s = i as usize;
        Inflight {
            seq: self.seq[s],
            uop: self.uop[s],
            wrong_path: self.wrong_path[s],
            decision: self.decision[s],
            prod1: (self.prod1[s] != NO_PROD).then_some(self.prod1[s]),
            prod2: (self.prod2[s] != NO_PROD).then_some(self.prod2[s]),
            arrival: self.arrival[s],
            issued: self.issued[s],
            completed: self.completed[s],
            complete_at: self.complete_at[s],
            fetched_at: self.fetched_at[s],
        }
    }

    fn reset(&mut self) {
        self.seq.clear();
        self.complete_at.clear();
        self.arrival.clear();
        self.fetched_at.clear();
        self.prod1.clear();
        self.prod2.clear();
        self.kind.clear();
        self.issued.clear();
        self.completed.clear();
        self.wrong_path.clear();
        self.uop.clear();
        self.decision.clear();
        self.free.clear();
    }
}

/// One simulated processor running one benchmark workload.
///
/// Construct with a [`PipelineConfig`], a workload configuration, and
/// a [`Controller`] (branch predictor + confidence estimator); then
/// [`warmup`](Self::warmup) and [`run`](Self::run).
///
/// See the crate docs for the modelled microarchitecture.
pub struct Simulation {
    cfg: PipelineConfig,
    gen: WorkloadGenerator,
    ctl: Controller,
    mem: MemHierarchy,
    arena: Arena, // lint: transient — uop storage; contents rebuilt on restore
    /// Front-end pipe, oldest first — arena slot indices.
    frontend: VecDeque<u32>,
    /// Reorder buffer, oldest first (ascending seq) — arena slot
    /// indices.
    rob: VecDeque<u32>,
    /// Dispatched entries whose producers are all complete, awaiting a
    /// unit (see [`SchedEnt`]). Together with `waiters` this is the
    /// event-driven scheduler: derived state covering exactly
    /// `{i ∈ rob : !issued[i]}`, rebuilt on restore, never serialized.
    /// `issue` scans only this list — not-yet-ready entries sit in
    /// `waiters` and cost nothing per cycle.
    ready: Vec<SchedEnt>, // lint: transient — derived, rebuilt on restore
    /// Park lot for dispatched entries still missing a producer,
    /// indexed by that producer's seq & [`WAIT_MASK`]. A completing
    /// uop drains its slot and each occupant revalidates: stale
    /// (squashed) entries drop, collision victims re-park, genuinely
    /// woken ones move to `ready`.
    waiters: Vec<Vec<SchedEnt>>, // lint: transient — derived, rebuilt on restore
    /// Pending completions, one bucket per future cycle: `(slot, seq)`
    /// tickets pushed at issue, drained when `now` reaches the bucket.
    /// Tickets are validated against the arena before use (a squashed
    /// uop leaves a stale ticket behind), and due tickets are
    /// processed in seq order — identical to the old oldest-first ROB
    /// scan. Derived state: rebuilt on restore, never serialized.
    complete_ring: Vec<Vec<(u32, u64)>>, // lint: transient — derived, rebuilt on restore
    /// Overflow for completions due ≥ `COMPLETE_RING` cycles out.
    complete_far: Vec<(u32, u64, u64)>, // lint: transient — derived, rebuilt on restore
    status: Vec<SlotStatus>,
    cp_ring: [u64; CP_RING],
    cp_index: u64,
    gate: GateCounter,
    gate_pending: VecDeque<(u64, u64)>,
    gate_counted: BTreeSet<u64>,
    fetch_history: u64,
    wrong_path_since: Option<u64>,
    restore_history: u64,
    redirect_until: u64,
    now: u64,
    next_seq: u64,
    sched_occ: [usize; 3],
    ldq_occ: usize,
    stq_occ: usize,
    stats: SimStats,
    // --- observability (derived outputs; deliberately excluded from
    // snapshots and digests — the simulator never reads them back, so
    // a traced run is bit-identical to an untraced one) ---
    tracer: Tracer,     // lint: transient — observability, never read back
    profiler: Profiler, // lint: transient — observability, never read back
    /// Cycles of the gate stall currently in progress, for pairing
    /// `GateStallBegin`/`GateStallEnd` trace events. Only advances
    /// while the tracer is enabled.
    gate_streak: u64, // lint: transient — observability, never read back
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("cycle", &self.now)
            .field("retired", &self.stats.retired)
            .field("rob", &self.rob.len())
            .field("frontend", &self.frontend.len())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Builds a simulation of `cfg` running `workload` under the given
    /// predictor/estimator controller.
    #[must_use]
    pub fn new(cfg: PipelineConfig, workload: &WorkloadConfig, ctl: Controller) -> Self {
        let mut stats = SimStats::default();
        if let Some((lo, hi, bin)) = cfg.density {
            stats.density = Some(DensityPair::new(lo, hi, bin));
        }
        let inflight_cap = cfg.frontend_capacity() + cfg.rob_size + 8;
        Self {
            gen: WorkloadGenerator::new(workload),
            ctl,
            mem: MemHierarchy::new(cfg.mem),
            arena: Arena::with_capacity(inflight_cap),
            frontend: VecDeque::with_capacity(cfg.frontend_capacity() + 8),
            rob: VecDeque::with_capacity(cfg.rob_size + 8),
            ready: Vec::with_capacity(cfg.rob_size + 8),
            waiters: vec![Vec::new(); WAIT_SLOTS],
            complete_ring: vec![Vec::new(); COMPLETE_RING],
            complete_far: Vec::new(),
            status: vec![
                SlotStatus {
                    seq: u64::MAX,
                    completed: true,
                };
                STATUS_WINDOW
            ],
            cp_ring: [u64::MAX; CP_RING],
            cp_index: 0,
            gate: GateCounter::new(cfg.gating.map_or(1, |g| g.counter_threshold)),
            gate_pending: VecDeque::new(),
            gate_counted: BTreeSet::new(),
            fetch_history: 0,
            wrong_path_since: None,
            restore_history: 0,
            redirect_until: 0,
            now: 0,
            next_seq: 0,
            sched_occ: [0; 3],
            ldq_occ: 0,
            stq_occ: 0,
            cfg,
            stats,
            tracer: Tracer::new(),
            profiler: Profiler::default(),
            gate_streak: 0,
        }
    }

    /// Builds a simulation with the paper's baseline bimodal–gshare
    /// predictor and a no-op (always-high) estimator.
    #[must_use]
    pub fn with_defaults(cfg: PipelineConfig, workload: &WorkloadConfig) -> Self {
        let ctl = SpeculationController::new(
            Box::new(perconf_bpred::baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            Box::new(AlwaysHigh) as Box<dyn SimEstimator>,
        );
        Self::new(cfg, workload, ctl)
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The absolute cycle counter (monotone across phases; never reset
    /// by [`try_warmup`](Self::try_warmup)).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configuration being simulated.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The controller (predictor + estimator), e.g. for inspecting
    /// learned state after a run.
    #[must_use]
    pub fn controller(&self) -> &Controller {
        &self.ctl
    }

    /// The memory hierarchy (for inspecting hit rates).
    #[must_use]
    pub fn mem(&self) -> &MemHierarchy {
        &self.mem
    }

    /// Attaches a tracer; subsequent cycles record events into it
    /// (subject to its runtime level, and only in builds with the
    /// `trace` feature).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer handle.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches a profiler; when it is enabled, the five pipeline
    /// stages record spans every cycle.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// The attached profiler handle.
    #[must_use]
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Materializes the hierarchical counter view of the machine,
    /// grouped by subsystem (`fetch`, `rob`, `cache`, `predictor`,
    /// `estimator`, `gating`).
    ///
    /// Counters are *derived* from state the simulator already keeps
    /// ([`SimStats`], cache hit/miss totals, controller metadata), so
    /// building a snapshot costs nothing during simulation, survives
    /// checkpoint/restore exactly (everything it reads is snapshotted
    /// state), and can never perturb a run. Snapshots taken at two
    /// points diff to the interval's activity; snapshots from sweep
    /// workers merge deterministically.
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        let s = &self.stats;
        let mut c = Counters::new();
        c.counter("fetch", "cycles", s.cycles)
            .counter("fetch", "uops_correct", s.fetched_correct)
            .counter("fetch", "uops_wrong", s.fetched_wrong)
            .counter("fetch", "redirect_cycles", s.redirect_cycles);
        c.counter("rob", "retired", s.retired)
            .counter("rob", "executed_correct", s.executed_correct)
            .counter("rob", "executed_wrong", s.executed_wrong)
            .counter("rob", "squashed_uops", s.squashed)
            .counter("rob", "squashes", s.squashes)
            .counter("rob", "occupancy_sum", s.rob_occupancy_sum)
            .counter("rob", "stall_empty", s.stall_empty)
            .counter("rob", "stall_deps", s.stall_deps)
            .counter("rob", "stall_fu", s.stall_fu)
            .counter("rob", "stall_load", s.stall_load)
            .counter("rob", "stall_exec", s.stall_exec);
        c.counter("cache", "l1_hits", self.mem.l1().hits())
            .counter("cache", "l1_misses", self.mem.l1().misses())
            .counter("cache", "l2_hits", self.mem.l2().hits())
            .counter("cache", "l2_misses", self.mem.l2().misses())
            .counter("cache", "prefetches_issued", self.mem.prefetch_issued());
        c.counter("predictor", "branches_retired", s.branches_retired)
            .counter("predictor", "base_mispredicts", s.base_mispredicts)
            .counter(
                "predictor",
                "speculated_mispredicts",
                s.speculated_mispredicts,
            )
            .gauge(
                "predictor",
                "storage_bits",
                self.ctl.predictor().storage_bits(),
            );
        c.counter("estimator", "flagged_low", s.confusion.flagged_low())
            .counter("estimator", "hits_low_mispredicted", s.confusion.miss_low)
            .counter(
                "estimator",
                "missed_high_mispredicted",
                s.confusion.miss_high,
            )
            .counter(
                "estimator",
                "false_alarms_low_correct",
                s.confusion.correct_low,
            )
            .counter("estimator", "reversals", s.reversals)
            .counter("estimator", "reversals_good", s.reversals_good)
            .counter("estimator", "reversals_bad", s.reversals_bad)
            .gauge(
                "estimator",
                "storage_bits",
                self.ctl.estimator().storage_bits(),
            );
        c.counter("gating", "gated_cycles", s.gated_cycles).counter(
            "gating",
            "resolution_delay_sum",
            s.resolution_delay_sum,
        );
        c.snapshot()
    }

    /// Runs until `uops` further correct-path uops retire; returns the
    /// accumulated stats.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the pipeline stops making progress
    /// or an internal invariant breaks; the simulation must be
    /// discarded afterwards.
    pub fn try_run(&mut self, uops: u64) -> Result<&SimStats, SimError> {
        let target = self.stats.retired + uops;
        let deadline = self.now + uops.max(1_000) * 400;
        while self.stats.retired < target {
            self.try_step()?;
            if self.now >= deadline {
                return Err(SimError::Stalled {
                    retired: self.stats.retired,
                    target,
                    cycle: self.now,
                });
            }
        }
        Ok(&self.stats)
    }

    /// Runs until `uops` further correct-path uops retire; returns the
    /// accumulated stats.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`] (stall or broken invariant); use
    /// [`try_run`](Self::try_run) to get the error as a value instead.
    pub fn run(&mut self, uops: u64) -> &SimStats {
        if let Err(e) = self.try_run(uops) {
            panic!("{e}");
        }
        &self.stats
    }

    /// Runs `uops` to warm caches, predictors and estimators, then
    /// clears the statistics (the paper warms with 10M of each 30M
    /// trace).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] like [`try_run`](Self::try_run).
    pub fn try_warmup(&mut self, uops: u64) -> Result<(), SimError> {
        self.try_run(uops)?;
        self.stats.reset();
        if let Some((lo, hi, bin)) = self.cfg.density {
            self.stats.density = Some(DensityPair::new(lo, hi, bin));
        }
        Ok(())
    }

    /// Runs `uops` to warm caches, predictors and estimators, then
    /// clears the statistics.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`]; see [`try_warmup`](Self::try_warmup).
    pub fn warmup(&mut self, uops: u64) {
        if let Err(e) = self.try_warmup(uops) {
            panic!("{e}");
        }
    }

    /// Advances one cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when an internal invariant breaks this
    /// cycle (checked in release builds too).
    pub fn try_step(&mut self) -> Result<(), SimError> {
        // One flag load per cycle picks the stage sequence: the
        // profiled variant pays a scope guard per stage, the plain one
        // is byte-for-byte the uninstrumented loop. Splitting here
        // (rather than relying on per-scope disabled checks) keeps the
        // profiler's cost out of the hot path entirely when it is off.
        if self.profiler.enabled() {
            self.try_step_profiled()
        } else {
            self.now += 1;
            self.stats.rob_occupancy_sum += self.rob.len() as u64;
            self.retire();
            self.complete_and_resolve();
            self.issue();
            self.dispatch();
            if self.rob.len() > self.cfg.rob_size {
                return Err(SimError::RobOverflow {
                    len: self.rob.len(),
                    cap: self.cfg.rob_size,
                });
            }
            self.fetch()?;
            self.stats.cycles += 1;
            Ok(())
        }
    }

    /// [`try_step`](Self::try_step) with a profiling span around each
    /// stage. Must stay in lockstep with the plain sequence above —
    /// the `observability_never_perturbs_the_run` test pins that.
    fn try_step_profiled(&mut self) -> Result<(), SimError> {
        self.now += 1;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        {
            let _s = self.profiler.scope("sim/retire");
            self.retire();
        }
        {
            let _s = self.profiler.scope("sim/complete_resolve");
            self.complete_and_resolve();
        }
        {
            let _s = self.profiler.scope("sim/issue");
            self.issue();
        }
        {
            let _s = self.profiler.scope("sim/dispatch");
            self.dispatch();
        }
        if self.rob.len() > self.cfg.rob_size {
            return Err(SimError::RobOverflow {
                len: self.rob.len(),
                cap: self.cfg.rob_size,
            });
        }
        {
            let _s = self.profiler.scope("sim/fetch");
            self.fetch()?;
        }
        self.stats.cycles += 1;
        Ok(())
    }

    /// Advances one cycle.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`]; see [`try_step`](Self::try_step).
    pub fn step(&mut self) {
        if let Err(e) = self.try_step() {
            panic!("{e}");
        }
    }

    // ----- pipeline stages (back to front) --------------------------

    fn retire(&mut self) {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(&hi) = self.rob.front() else { break };
            let h = hi as usize;
            if !(self.arena.completed[h] && self.arena.complete_at[h] < self.now) {
                break;
            }
            self.rob.pop_front();
            debug_assert!(
                !self.arena.wrong_path[h],
                "wrong-path uop reached retirement"
            );
            match self.arena.kind[h] {
                UopKind::Load => self.ldq_occ -= 1,
                UopKind::Store => self.stq_occ -= 1,
                _ => {}
            }
            self.stats.retired += 1;
            if let Some(d) = self.arena.decision[h] {
                let actual = self.arena.uop[h]
                    .branch
                    .expect("branch uop has payload")
                    .taken;
                let out = self.ctl.train(&d, actual);
                self.stats.branches_retired += 1;
                if out.base_mispredicted {
                    self.stats.base_mispredicts += 1;
                }
                if out.speculated_mispredicted {
                    self.stats.speculated_mispredicts += 1;
                }
                if d.reversed() {
                    self.stats.reversals += 1;
                    if out.base_mispredicted {
                        self.stats.reversals_good += 1;
                    } else {
                        self.stats.reversals_bad += 1;
                    }
                }
                self.stats
                    .confusion
                    .record(out.base_mispredicted, d.estimate.is_low());
                if let Some(density) = &mut self.stats.density {
                    density.add(i64::from(d.estimate.raw), out.base_mispredicted);
                }
            }
            self.arena.remove(hi);
            n += 1;
        }
        if n == 0 {
            self.account_retire_stall();
        }
    }

    /// Classifies why retirement made no progress this cycle, for the
    /// stall-breakdown counters.
    fn account_retire_stall(&mut self) {
        let Some(&hi) = self.rob.front() else {
            self.stats.stall_empty += 1;
            return;
        };
        let h = hi as usize;
        if !self.arena.issued[h] {
            if self.deps_ready(h) {
                self.stats.stall_fu += 1;
            } else {
                self.stats.stall_deps += 1;
            }
        } else if self.arena.kind[h] == UopKind::Load {
            self.stats.stall_load += 1;
        } else {
            self.stats.stall_exec += 1;
        }
    }

    fn complete_and_resolve(&mut self) {
        // Event-driven: drain this cycle's completion bucket instead
        // of scanning the whole ROB. Due tickets are processed in seq
        // order — exactly the order the old oldest-first `position()`
        // scan produced (completing an entry never changes an earlier
        // entry's predicate, and a mispredict squash only removes
        // strictly younger entries, whose tickets then fail
        // validation).
        let b = self.now as usize & COMPLETE_MASK;
        let mut due = std::mem::take(&mut self.complete_ring[b]);
        if !self.complete_far.is_empty() {
            let now = self.now;
            let mut k = 0;
            for j in 0..self.complete_far.len() {
                let (i, seq, at) = self.complete_far[j];
                if at == now {
                    due.push((i, seq));
                } else {
                    self.complete_far[k] = (i, seq, at);
                    k += 1;
                }
            }
            self.complete_far.truncate(k);
        }
        if due.is_empty() {
            self.complete_ring[b] = due;
            return;
        }
        due.sort_unstable_by_key(|&(_, seq)| seq);
        for &(ticket, seq) in &due {
            let i = ticket as usize;
            // Stale-ticket guard: the uop may have been squashed (and
            // its slot possibly reused) since it issued.
            if self.arena.seq[i] != seq || !self.arena.issued[i] || self.arena.completed[i] {
                continue;
            }
            debug_assert!(self.arena.complete_at[i] <= self.now);
            self.arena.completed[i] = true;
            self.mark_complete(seq);
            self.wake(seq);
            if self.arena.kind[i] == UopKind::Branch {
                self.release_gate(seq);
                let wrong_path = self.arena.wrong_path[i];
                let resolved = match (&self.arena.decision[i], self.arena.uop[i].branch) {
                    (Some(d), Some(br)) if !wrong_path => {
                        Some((br.pc, d.speculated_taken != br.taken))
                    }
                    _ => None,
                };
                if let Some((pc, mispredicted)) = resolved {
                    if self.tracer.enabled() {
                        self.tracer.record(TraceEvent::BranchResolved {
                            cycle: self.now,
                            pc,
                            mispredicted,
                        });
                    }
                    if mispredicted {
                        debug_assert_eq!(self.wrong_path_since, Some(seq));
                        self.stats.resolution_delay_sum += self.now - self.arena.fetched_at[i];
                        self.squash_after(seq);
                        self.fetch_history = self.restore_history;
                        self.wrong_path_since = None;
                        self.redirect_until = self.now + 1;
                        self.stats.squashes += 1;
                    }
                }
            }
        }
        due.clear();
        self.complete_ring[b] = due;
    }

    /// Files a completion ticket for slot `i` (seq `seq`) due at
    /// absolute cycle `at`. A ticket can never be due in the current
    /// cycle or earlier (that bucket already drained): clamping to
    /// `now + 1` reproduces the old scan's `complete_at <= now`
    /// predicate, which also only fired from the *next* cycle on.
    fn schedule_completion(&mut self, i: u32, seq: u64, at: u64) {
        let due = at.max(self.now + 1);
        if due - self.now < COMPLETE_RING as u64 {
            self.complete_ring[due as usize & COMPLETE_MASK].push((i, seq));
        } else {
            self.complete_far.push((i, seq, due));
        }
    }

    fn squash_after(&mut self, boundary: u64) {
        while let Some(&bi) = self.frontend.back() {
            if self.arena.seq[bi as usize] <= boundary {
                break;
            }
            self.frontend.pop_back();
            self.discard(bi, false);
        }
        let had_rob_squash = self
            .rob
            .back()
            .is_some_and(|&bi| self.arena.seq[bi as usize] > boundary);
        while let Some(&bi) = self.rob.back() {
            if self.arena.seq[bi as usize] <= boundary {
                break;
            }
            self.rob.pop_back();
            self.discard(bi, true);
        }
        if had_rob_squash {
            // Parked entries are left in place — wake-time validation
            // (seq match + liveness) drops the squashed ones, exactly
            // like stale completion tickets.
            self.ready.retain(|e| e.seq <= boundary);
        }
    }

    /// Releases the resources of a squashed uop. `dispatched` says
    /// whether it had left the front end (and thus holds ROB-side
    /// resources).
    fn discard(&mut self, i: u32, dispatched: bool) {
        let s = i as usize;
        let seq = self.arena.seq[s];
        let kind = self.arena.kind[s];
        self.mark_complete(seq);
        self.stats.squashed += 1;
        if dispatched {
            if !self.arena.issued[s] {
                self.sched_occ[class_of(kind) as usize] -= 1;
            }
            match kind {
                UopKind::Load => self.ldq_occ -= 1,
                UopKind::Store => self.stq_occ -= 1,
                _ => {}
            }
        }
        if kind == UopKind::Branch {
            self.release_gate(seq);
        }
        self.arena.remove(i);
    }

    fn issue(&mut self) {
        // Walk only the *ready* entries, in seq order — the old full
        // ROB scan skipped issued entries and kept deps-pending ones
        // anyway, and readiness is monotone, so the entries it would
        // have selected are exactly the ones here: selection is
        // decision-for-decision identical. Issuing an entry only
        // mutates its own columns and the memory hierarchy (which no
        // readiness check reads), so the fused pick-and-execute pass
        // matches the old collect-then-issue two-phase loop. Entries
        // that issue are compacted out of the list in place; the rest
        // (unit-starved) stay for next cycle.
        if self.ready.is_empty() {
            return;
        }
        // Wakeups and dispatches append out of program order; the
        // list is near-sorted, which pdqsort handles in ~one pass.
        self.ready.sort_unstable_by_key(|e| e.seq);
        let mut avail = [self.cfg.units_int, self.cfg.units_mem, self.cfg.units_fp];
        let now = self.now;
        let len = self.ready.len();
        let mut r = 0;
        let mut w = 0;
        while r < len {
            if avail == [0, 0, 0] {
                break;
            }
            let ent = self.ready[r];
            r += 1;
            let c = ent.cls as usize;
            if avail[c] == 0 {
                self.ready[w] = ent;
                w += 1;
                continue;
            }
            avail[c] -= 1;
            let i = ent.idx as usize;
            debug_assert!(self.deps_ready(i), "ready-list entry with pending producer");
            let kind = self.arena.kind[i];
            let latency = match kind {
                UopKind::IntAlu | UopKind::Branch => 1,
                UopKind::IntMul => 3,
                UopKind::Fp => 4,
                UopKind::Store => {
                    let m = self.arena.uop[i].mem.expect("store has address");
                    self.mem.store(m.addr);
                    1
                }
                UopKind::Load => {
                    let m = self.arena.uop[i].mem.expect("load has address");
                    self.mem.load(m.addr)
                }
            };
            debug_assert!(latency >= 1, "zero-latency issue would miss its bucket");
            let at = now + u64::from(latency);
            self.arena.issued[i] = true;
            self.arena.complete_at[i] = at;
            self.schedule_completion(ent.idx, self.arena.seq[i], at);
            self.sched_occ[c] -= 1;
            if self.arena.wrong_path[i] {
                self.stats.executed_wrong += 1;
            } else {
                self.stats.executed_correct += 1;
            }
        }
        // Units exhausted early: keep the rest of the ready list.
        while r < len {
            self.ready[w] = self.ready[r];
            w += 1;
            r += 1;
        }
        self.ready.truncate(w);
    }

    fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(&hi) = self.frontend.front() else {
                break;
            };
            let h = hi as usize;
            if self.arena.arrival[h] > self.now || self.rob.len() >= self.cfg.rob_size {
                break;
            }
            let kind = self.arena.kind[h];
            let c = class_of(kind);
            let sched_cap = match c {
                Class::Int => self.cfg.sched_int,
                Class::Mem => self.cfg.sched_mem,
                Class::Fp => self.cfg.sched_fp,
            };
            if self.sched_occ[c as usize] >= sched_cap {
                break;
            }
            match kind {
                UopKind::Load if self.ldq_occ >= self.cfg.load_buffers => break,
                UopKind::Store if self.stq_occ >= self.cfg.store_buffers => break,
                _ => {}
            }
            self.frontend.pop_front();
            self.sched_occ[c as usize] += 1;
            match kind {
                UopKind::Load => self.ldq_occ += 1,
                UopKind::Store => self.stq_occ += 1,
                _ => {}
            }
            self.rob.push_back(hi);
            let ent = SchedEnt {
                idx: hi,
                cls: c as u8,
                seq: self.arena.seq[h],
                p1: self.arena.prod1[h],
                p2: self.arena.prod2[h],
            };
            self.park_or_ready(ent);
            n += 1;
        }
    }

    fn fetch(&mut self) -> Result<(), SimError> {
        self.apply_pending_gate_increments();
        if self.now < self.redirect_until {
            self.stats.redirect_cycles += 1;
            return Ok(());
        }
        if self.cfg.gating.is_some() && self.gate.should_gate() {
            self.stats.gated_cycles += 1;
            if self.tracer.enabled() {
                if self.gate_streak == 0 {
                    self.tracer
                        .record(TraceEvent::GateStallBegin { cycle: self.now });
                }
                self.gate_streak += 1;
            }
            return Ok(());
        }
        if self.gate_streak > 0 {
            self.tracer.record(TraceEvent::GateStallEnd {
                cycle: self.now,
                stalled: self.gate_streak,
            });
            self.gate_streak = 0;
        }
        for _ in 0..self.cfg.width {
            if self.frontend.len() >= self.cfg.frontend_capacity() {
                break;
            }
            let wrong = self.wrong_path_since.is_some();
            let uop = if wrong {
                self.gen.next_wrong_path()
            } else {
                self.gen.next_uop()
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = &mut self.status[seq as usize & STATUS_MASK];
            if !slot.completed {
                return Err(SimError::StatusWindowReuse {
                    seq,
                    occupant: slot.seq,
                });
            }
            *slot = SlotStatus {
                seq,
                completed: false,
            };
            let (prod1, prod2) = self.producers(&uop, seq, wrong);
            let mut decision = None;
            if let Some(br) = uop.branch {
                let d = self.ctl.decide(br.pc, self.fetch_history);
                if self.tracer.enabled() {
                    self.tracer.record(TraceEvent::ConfidenceBucket {
                        cycle: self.now,
                        pc: br.pc,
                        raw: i64::from(d.estimate.raw),
                        class: d.estimate.class.index(),
                    });
                }
                self.fetch_history = (self.fetch_history << 1) | u64::from(d.speculated_taken);
                if let Some(g) = self.cfg.gating {
                    if d.gates() {
                        self.gate_pending
                            .push_back((self.now + u64::from(g.ce_latency), seq));
                    }
                }
                if !wrong && d.speculated_taken != br.taken {
                    self.wrong_path_since = Some(seq);
                    self.restore_history = (d.ctx.history << 1) | u64::from(br.taken);
                }
                decision = Some(d);
            }
            if !wrong {
                self.cp_ring[self.cp_index as usize & CP_MASK] = seq;
                self.cp_index += 1;
                self.stats.fetched_correct += 1;
            } else {
                self.stats.fetched_wrong += 1;
            }
            let idx = self.arena.insert(Inflight {
                seq,
                uop,
                wrong_path: wrong,
                decision,
                prod1,
                prod2,
                arrival: self.now + u64::from(self.cfg.frontend_depth),
                issued: false,
                completed: false,
                complete_at: u64::MAX,
                fetched_at: self.now,
            });
            self.frontend.push_back(idx);
        }
        Ok(())
    }

    // ----- helpers ---------------------------------------------------

    fn producers(&self, uop: &Uop, seq: u64, wrong: bool) -> (Option<u64>, Option<u64>) {
        let lookup = |dist: u32| -> Option<u64> {
            if dist == 0 {
                return None;
            }
            if wrong {
                return seq.checked_sub(u64::from(dist));
            }
            // Correct-path distances index the correct-path stream.
            let d = u64::from(dist);
            if d > self.cp_index || d as usize > CP_RING {
                return None;
            }
            let s = self.cp_ring[(self.cp_index - d) as usize & CP_MASK];
            if s == u64::MAX {
                None
            } else {
                Some(s)
            }
        };
        (lookup(uop.src1), lookup(uop.src2))
    }

    /// Readiness of entry `i`'s producers — the per-probe form used on
    /// cold paths (retire-stall classification). The issue scan keeps
    /// its own memoized copy inline in [`SchedEnt`].
    fn deps_ready(&self, i: usize) -> bool {
        let p1 = self.arena.prod1[i];
        if p1 != NO_PROD && !self.is_complete(p1) {
            return false;
        }
        let p2 = self.arena.prod2[i];
        p2 == NO_PROD || self.is_complete(p2)
    }

    fn is_complete(&self, seq: u64) -> bool {
        let slot = self.status[seq as usize & STATUS_MASK];
        slot.seq != seq || slot.completed
    }

    fn mark_complete(&mut self, seq: u64) {
        let slot = &mut self.status[seq as usize & STATUS_MASK];
        if slot.seq == seq {
            slot.completed = true;
        }
    }

    fn apply_pending_gate_increments(&mut self) {
        while let Some(&(cycle, seq)) = self.gate_pending.front() {
            if cycle > self.now {
                break;
            }
            self.gate_pending.pop_front();
            if !self.is_complete(seq) {
                self.gate.on_low_conf_fetch();
                self.gate_counted.insert(seq);
            }
        }
    }

    /// Releases the gate-counter contribution of branch `seq`, whether
    /// it was already counted or still pending.
    fn release_gate(&mut self, seq: u64) {
        if self.gate_counted.remove(&seq) {
            self.gate.on_low_conf_resolve();
        } else if !self.gate_pending.is_empty() {
            self.gate_pending.retain(|&(_, s)| s != seq);
        }
    }

    /// Routes a dispatched (or re-validated) entry: producers observed
    /// complete are cleared; if any remains, the entry parks on the
    /// first missing one, otherwise it joins the ready list.
    fn park_or_ready(&mut self, mut ent: SchedEnt) {
        if ent.p1 != NO_PROD && self.is_complete(ent.p1) {
            ent.p1 = NO_PROD;
        }
        if ent.p2 != NO_PROD && self.is_complete(ent.p2) {
            ent.p2 = NO_PROD;
        }
        let p = if ent.p1 != NO_PROD {
            ent.p1
        } else if ent.p2 != NO_PROD {
            ent.p2
        } else {
            self.ready.push(ent);
            return;
        };
        self.waiters[p as usize & WAIT_MASK].push(ent);
    }

    /// Producer `pseq` just completed: drain its wakeup slot. Each
    /// occupant revalidates — stale (squashed) entries are dropped via
    /// the same seq-match-plus-liveness check as completion tickets,
    /// collision victims (parked on a different producer that shares
    /// the slot) re-park, and genuinely ready entries move to `ready`.
    fn wake(&mut self, pseq: u64) {
        let slot = pseq as usize & WAIT_MASK;
        if self.waiters[slot].is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.waiters[slot]);
        for ent in list.drain(..) {
            let i = ent.idx as usize;
            if self.arena.seq[i] != ent.seq || self.arena.completed[i] {
                continue;
            }
            self.park_or_ready(ent);
        }
        // Recycle the allocation unless a collision victim re-parked
        // into the very slot being drained.
        if self.waiters[slot].is_empty() {
            self.waiters[slot] = list;
        }
    }

    /// Rebuilds the derived scheduler state (ready list + wakeup
    /// table) and completion ring from the authoritative queue + arena
    /// state (after a restore or an arena permutation). All are pure
    /// accelerators covering the un-issued / issued-but-incomplete ROB
    /// entries; never serialized.
    fn rebuild_derived(&mut self) {
        self.ready.clear();
        for slot in &mut self.waiters {
            slot.clear();
        }
        for bucket in &mut self.complete_ring {
            bucket.clear();
        }
        self.complete_far.clear();
        let mut pending: Vec<(u32, u64, u64)> = Vec::new();
        let mut waiting: Vec<SchedEnt> = Vec::new();
        for &i in &self.rob {
            let s = i as usize;
            if !self.arena.issued[s] {
                waiting.push(SchedEnt {
                    idx: i,
                    cls: class_of(self.arena.kind[s]) as u8,
                    seq: self.arena.seq[s],
                    p1: self.arena.prod1[s],
                    p2: self.arena.prod2[s],
                });
            } else if !self.arena.completed[s] {
                pending.push((i, self.arena.seq[s], self.arena.complete_at[s]));
            }
        }
        for (i, seq, at) in pending {
            self.schedule_completion(i, seq, at);
        }
        for ent in waiting {
            self.park_or_ready(ent);
        }
    }

    /// Serializes a slot-index queue as its canonical `Vec<Inflight>`
    /// form (queue order — never arena slot order).
    fn snapshot_queue(&self, q: &VecDeque<u32>) -> Value {
        let entries: Vec<Inflight> = q.iter().map(|&i| self.arena.extract(i)).collect();
        entries.to_value()
    }

    /// Test hook: re-home every in-flight uop to a different arena
    /// slot (and scramble the free list) without touching behaviour.
    /// Snapshots, digests, and every subsequent cycle must be
    /// unaffected — program order lives in the queues, not the slots.
    #[cfg(test)]
    fn scramble_arena(&mut self) {
        let fr: Vec<Inflight> = self
            .frontend
            .iter()
            .map(|&i| self.arena.extract(i))
            .collect();
        let rb: Vec<Inflight> = self.rob.iter().map(|&i| self.arena.extract(i)).collect();
        self.arena.reset();
        self.frontend.clear();
        self.rob.clear();
        // Burn a few slots and free them so the free list is non-empty
        // and hands out low indices first.
        if let Some(pad) = fr.first().or(rb.first()).cloned() {
            let burned: Vec<u32> = (0..5).map(|_| self.arena.insert(pad.clone())).collect();
            for b in burned {
                self.arena.remove(b);
            }
        }
        // Re-insert back-to-front: every entry lands in a different
        // slot than canonical front-to-back insertion would give it.
        let mut rob_idx: Vec<u32> = rb.into_iter().rev().map(|e| self.arena.insert(e)).collect();
        rob_idx.reverse();
        let mut fr_idx: Vec<u32> = fr.into_iter().rev().map(|e| self.arena.insert(e)).collect();
        fr_idx.reverse();
        self.rob = rob_idx.into_iter().collect();
        self.frontend = fr_idx.into_iter().collect();
        self.rebuild_derived();
    }
}

/// Snapshotting captures the *entire* simulated machine: workload
/// cursor, predictor and estimator tables, caches and prefetcher,
/// front-end pipe, ROB, completion window, gate state and statistics.
/// Restoring into a simulation built from the same `PipelineConfig`
/// and workload resumes bit-identically — every subsequent cycle
/// produces the same state digests as an uninterrupted run.
///
/// In-flight uops are serialized in *queue order* (front-end then ROB,
/// oldest first) as [`Inflight`] records, so snapshot bytes — and
/// therefore [`state_digest`](Snapshot::state_digest) — are completely
/// independent of how the arena happened to assign slots.
///
/// The pipeline config is embedded in the snapshot and checked on
/// restore, so a checkpoint can never silently resume under a
/// different machine configuration.
impl Snapshot for Simulation {
    fn save_state(&self) -> Value {
        // `gate_counted` is a BTreeSet, so this iterates in sorted
        // order and the snapshot bytes are hash-order independent.
        let gate_counted: Vec<u64> = self.gate_counted.iter().copied().collect();
        Value::Object(vec![
            ("cfg".into(), self.cfg.to_value()),
            ("gen".into(), self.gen.save_state()),
            ("ctl".into(), self.ctl.save_state()),
            ("mem".into(), self.mem.to_value()),
            ("frontend".into(), self.snapshot_queue(&self.frontend)),
            ("rob".into(), self.snapshot_queue(&self.rob)),
            ("status".into(), self.status.to_value()),
            ("cp_ring".into(), self.cp_ring.to_value()),
            ("cp_index".into(), self.cp_index.to_value()),
            ("gate".into(), self.gate.save_state()),
            ("gate_pending".into(), self.gate_pending.to_value()),
            ("gate_counted".into(), gate_counted.to_value()),
            ("fetch_history".into(), self.fetch_history.to_value()),
            ("wrong_path_since".into(), self.wrong_path_since.to_value()),
            ("restore_history".into(), self.restore_history.to_value()),
            ("redirect_until".into(), self.redirect_until.to_value()),
            ("now".into(), self.now.to_value()),
            ("next_seq".into(), self.next_seq.to_value()),
            ("sched_occ".into(), self.sched_occ.to_value()),
            ("ldq_occ".into(), self.ldq_occ.to_value()),
            ("stq_occ".into(), self.stq_occ.to_value()),
            ("stats".into(), self.stats.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        fn f<T: Deserialize>(state: &Value, name: &str) -> Result<T, SnapshotError> {
            serde::field(state, name).map_err(SnapshotError::from_de)
        }
        fn part<'v>(state: &'v Value, name: &str) -> Result<&'v Value, SnapshotError> {
            state
                .get(name)
                .ok_or_else(|| SnapshotError::msg(format!("simulation snapshot missing `{name}`")))
        }
        let cfg: PipelineConfig = f(state, "cfg")?;
        if cfg != self.cfg {
            return Err(SnapshotError::msg(
                "snapshot was taken under a different pipeline configuration",
            ));
        }
        let status: Vec<SlotStatus> = f(state, "status")?;
        if status.len() != STATUS_WINDOW {
            return Err(SnapshotError::msg(format!(
                "snapshot status window has {} slots, expected {STATUS_WINDOW}",
                status.len()
            )));
        }
        let frontend: Vec<Inflight> = f(state, "frontend")?;
        let rob: Vec<Inflight> = f(state, "rob")?;
        self.gen.restore_state(part(state, "gen")?)?;
        self.ctl.restore_state(part(state, "ctl")?)?;
        self.gate.restore_state(part(state, "gate")?)?;
        self.mem = f(state, "mem")?;
        self.arena.reset();
        self.frontend.clear();
        self.rob.clear();
        for e in frontend {
            let idx = self.arena.insert(e);
            self.frontend.push_back(idx);
        }
        for e in rob {
            let idx = self.arena.insert(e);
            self.rob.push_back(idx);
        }
        self.status = status;
        self.cp_ring = f(state, "cp_ring")?;
        self.cp_index = f(state, "cp_index")?;
        self.gate_pending = f(state, "gate_pending")?;
        let counted: Vec<u64> = f(state, "gate_counted")?;
        self.gate_counted = counted.into_iter().collect();
        self.fetch_history = f(state, "fetch_history")?;
        self.wrong_path_since = f(state, "wrong_path_since")?;
        self.restore_history = f(state, "restore_history")?;
        self.redirect_until = f(state, "redirect_until")?;
        self.now = f(state, "now")?;
        self.next_seq = f(state, "next_seq")?;
        self.sched_occ = f(state, "sched_occ")?;
        self.ldq_occ = f(state, "ldq_occ")?;
        self.stq_occ = f(state, "stq_occ")?;
        self.stats = f(state, "stats")?;
        // After `now` is in place: ticket placement depends on it.
        self.rebuild_derived();
        Ok(())
    }

    fn state_digest(&self) -> u64 {
        // Digest the full serialized machine: slower than the per-table
        // digests of the predictors, but a simulation digest is only
        // taken at checkpoint/verify intervals, and covering everything
        // is what makes lockstep divergence detection airtight.
        digest_value(&self.save_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perconf_core::{PerceptronCe, PerceptronCeConfig};

    fn controller(estimator: Box<dyn SimEstimator>) -> Controller {
        SpeculationController::new(
            Box::new(perconf_bpred::baseline_bimodal_gshare()) as Box<dyn SimPredictor>,
            estimator,
        )
    }

    fn workload(name: &str) -> WorkloadConfig {
        perconf_workload::spec2000_config(name).unwrap()
    }

    #[test]
    fn retires_exactly_the_requested_uops() {
        let mut sim = Simulation::with_defaults(PipelineConfig::shallow(), &workload("gcc"));
        let stats = sim.run(5_000);
        assert!(stats.retired >= 5_000 && stats.retired < 5_000 + 8);
    }

    #[test]
    fn ipc_is_positive_and_bounded_by_width() {
        let mut sim = Simulation::with_defaults(PipelineConfig::shallow(), &workload("gzip"));
        let stats = sim.run(20_000);
        assert!(stats.ipc() > 0.1, "ipc={}", stats.ipc());
        assert!(stats.ipc() <= 4.0);
    }

    #[test]
    fn mispredictions_generate_wrong_path_work() {
        let mut sim = Simulation::with_defaults(PipelineConfig::deep(), &workload("mcf"));
        let stats = sim.run(20_000);
        assert!(stats.base_mispredicts > 0);
        assert!(stats.fetched_wrong > 0);
        assert!(stats.executed_wrong > 0);
        assert!(stats.squashes > 0);
        assert_eq!(stats.speculated_mispredicts, stats.base_mispredicts);
    }

    #[test]
    fn deeper_pipeline_wastes_more_fetch() {
        // The depth scaling of speculation waste shows in *fetched*
        // wrong-path work (executed wrong-path work is bounded by the
        // drain-limited backend — see DESIGN.md §7 / EXPERIMENTS.md).
        let mut shallow = Simulation::with_defaults(PipelineConfig::shallow(), &workload("vpr"));
        let mut deep = Simulation::with_defaults(PipelineConfig::deep(), &workload("vpr"));
        shallow.warmup(30_000);
        deep.warmup(30_000);
        let s = shallow.run(50_000).clone();
        let d = deep.run(50_000).clone();
        let ws = s.fetched_wrong as f64 / s.fetched_correct as f64;
        let wd = d.fetched_wrong as f64 / d.fetched_correct as f64;
        assert!(wd > ws * 1.2, "deep {wd} vs shallow {ws}");
    }

    #[test]
    fn perfect_workload_has_no_wrong_path() {
        // vortex's branches are ~99.9% biased; once the predictor is
        // warm, mispredicts are rare and wrong-path work is a small
        // fraction.
        let mut sim = Simulation::with_defaults(PipelineConfig::shallow(), &workload("vortex"));
        sim.warmup(40_000);
        let stats = sim.run(40_000);
        assert!(
            stats.wasted_execution_frac() < 0.2,
            "waste = {}",
            stats.wasted_execution_frac()
        );
    }

    #[test]
    fn gating_reduces_wrong_path_execution() {
        let wl = workload("twolf");
        let ce =
            || Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>;
        let mut base = Simulation::new(PipelineConfig::deep(), &wl, controller(ce()));
        let mut gated = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce()));
        base.warmup(20_000);
        gated.warmup(20_000);
        let b = base.run(40_000).clone();
        let g = gated.run(40_000).clone();
        assert!(g.gated_cycles > 0, "gate never engaged");
        assert!(
            g.executed_wrong < b.executed_wrong,
            "gated {} vs base {}",
            g.executed_wrong,
            b.executed_wrong
        );
    }

    #[test]
    fn reversal_reduces_speculated_mispredicts() {
        // twolf, not mcf: reversal only pays where the reversal region
        // (y > 90) keeps PVN above 50% *after* pipeline training lag.
        // twolf holds ~0.57 there; mcf sits at ~0.45 (trace-level 0.55
        // eroded by lag), so on mcf reversal is net-negative on this
        // substrate — consistent with the paper's observation that
        // reversal gains are small and benchmark-dependent (§5.5).
        let wl = workload("twolf");
        let ce =
            Box::new(PerceptronCe::new(PerceptronCeConfig::combined())) as Box<dyn SimEstimator>;
        let mut sim = Simulation::new(PipelineConfig::deep(), &wl, controller(ce));
        sim.warmup(30_000);
        let stats = sim.run(50_000);
        assert!(stats.reversals > 0, "no reversals happened");
        // The whole point of StrongLow reversal: more good than bad.
        assert!(
            stats.reversals_good > stats.reversals_bad,
            "good {} vs bad {}",
            stats.reversals_good,
            stats.reversals_bad
        );
        assert!(stats.speculated_mispredicts < stats.base_mispredicts);
    }

    #[test]
    fn density_collection_populates_both_histograms() {
        let wl = workload("gcc");
        let ce =
            Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>;
        let cfg = PipelineConfig::shallow().with_density(-400, 400, 10);
        let mut sim = Simulation::new(cfg, &wl, controller(ce));
        sim.warmup(10_000);
        let stats = sim.run(30_000);
        let d = stats.density.as_ref().expect("density enabled");
        assert!(d.correct.count() > 1000);
        assert!(d.mispredicted.count() > 0);
        assert_eq!(
            d.correct.count() + d.mispredicted.count(),
            stats.branches_retired
        );
    }

    #[test]
    fn warmup_resets_statistics() {
        let mut sim = Simulation::with_defaults(PipelineConfig::shallow(), &workload("gap"));
        sim.warmup(5_000);
        assert_eq!(sim.stats().retired, 0);
        assert_eq!(sim.stats().cycles, 0);
        let stats = sim.run(1_000);
        assert!(stats.retired >= 1_000);
    }

    #[test]
    fn fetched_wrong_only_after_mispredicted_fetch() {
        let mut sim = Simulation::with_defaults(PipelineConfig::shallow(), &workload("eon"));
        let stats = sim.run(10_000);
        // eon has very few mispredicts; wrong-path fetch should be far
        // smaller than a high-misprediction benchmark's.
        let mut sim2 = Simulation::with_defaults(PipelineConfig::shallow(), &workload("mcf"));
        let stats2 = sim2.run(10_000);
        assert!(stats.fetched_wrong < stats2.fetched_wrong);
    }

    #[test]
    fn gate_counter_drains_completely_without_gating_config() {
        let mut sim = Simulation::with_defaults(PipelineConfig::deep(), &workload("vpr"));
        sim.run(10_000);
        assert_eq!(sim.gate.count(), 0);
        assert!(sim.gate_counted.is_empty());
    }

    #[test]
    fn gate_counter_drains_with_gating_enabled() {
        let wl = workload("twolf");
        let ce =
            Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>;
        let mut sim = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce));
        sim.run(20_000);
        // Everything in flight eventually resolves; after draining the
        // pipeline the counter must return to the in-flight count.
        assert!(sim.gate.count() as usize <= sim.gate_counted.len());
        assert!(sim.gate_counted.len() <= sim.rob.len() + sim.frontend.len());
    }

    #[test]
    fn try_run_returns_stats_on_success() {
        let mut sim = Simulation::with_defaults(PipelineConfig::shallow(), &workload("gcc"));
        let stats = sim.try_run(2_000).expect("healthy run");
        assert!(stats.retired >= 2_000);
        sim.try_warmup(1_000).expect("healthy warmup");
        assert_eq!(sim.stats().retired, 0);
    }

    #[test]
    fn sim_error_messages_name_the_invariant() {
        let stalled = SimError::Stalled {
            retired: 5,
            target: 10,
            cycle: 99,
        };
        assert_eq!(
            stalled.to_string(),
            "simulation stalled: retired 5/10 at cycle 99"
        );
        let reuse = SimError::StatusWindowReuse {
            seq: 70_000,
            occupant: 3,
        };
        assert!(reuse.to_string().contains("status-window slot reuse"));
        let rob = SimError::RobOverflow { len: 129, cap: 128 };
        assert!(rob.to_string().contains("ROB overflow"));
        // It is a std error, so sweep drivers can box it uniformly.
        let _: &dyn std::error::Error = &rob;
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let wl = workload("twolf");
        let ce =
            || Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>;
        let mut a = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce()));
        a.run(7_000);
        let snap = a.save_state();
        let digest = a.state_digest();

        let mut b = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce()));
        b.restore_state(&snap).expect("restore");
        assert_eq!(b.state_digest(), digest);

        // Both continue in lockstep: digests agree at every probe.
        for _ in 0..5 {
            for _ in 0..400 {
                a.step();
                b.step();
            }
            assert_eq!(a.state_digest(), b.state_digest());
        }
        assert_eq!(a.stats().retired, b.stats().retired);
        assert_eq!(a.stats().cycles, b.stats().cycles);
        assert_eq!(a.stats().base_mispredicts, b.stats().base_mispredicts);
    }

    #[test]
    fn snapshot_restore_rejects_config_mismatch() {
        let wl = workload("gcc");
        let mut a = Simulation::with_defaults(PipelineConfig::shallow(), &wl);
        a.run(500);
        let snap = a.save_state();
        let mut b = Simulation::with_defaults(PipelineConfig::deep(), &wl);
        let err = b.restore_state(&snap).unwrap_err();
        assert!(err.to_string().contains("configuration"), "{err}");
    }

    #[test]
    fn snapshot_survives_json_round_trip() {
        let wl = workload("gzip");
        let mut a = Simulation::with_defaults(PipelineConfig::shallow(), &wl);
        a.run(3_000);
        let json = serde_json::to_string(&a.save_state()).unwrap();
        let tree = serde_json::from_str(&json).unwrap();
        let mut b = Simulation::with_defaults(PipelineConfig::shallow(), &wl);
        b.restore_state(&tree).expect("restore from JSON");
        assert_eq!(a.state_digest(), b.state_digest());
        a.run(2_000);
        b.run(2_000);
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.stats().retired, b.stats().retired);
    }

    #[test]
    fn digest_diverges_after_state_tampering() {
        let wl = workload("vpr");
        let mut a = Simulation::with_defaults(PipelineConfig::shallow(), &wl);
        let mut b = Simulation::with_defaults(PipelineConfig::shallow(), &wl);
        a.run(1_000);
        b.run(1_000);
        assert_eq!(a.state_digest(), b.state_digest());
        // Tamper with one machine's fetch history: the digests must
        // split — this is the primitive `repro verify` is built on.
        b.fetch_history ^= 1;
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn digest_is_invariant_under_arena_slot_permutation() {
        // Satellite regression: `state_digest` must hash in-flight uops
        // in canonical (queue) order, never allocation order. Two
        // machines in the same architectural state but with arena slots
        // assigned completely differently must digest identically and
        // stay in lockstep forever after.
        let wl = workload("twolf");
        let ce =
            || Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>;
        let mut a = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce()));
        a.run(7_000);
        let mut b = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce()));
        b.restore_state(&a.save_state()).expect("restore");
        assert!(
            !b.rob.is_empty() && !b.frontend.is_empty(),
            "permutation test needs in-flight uops to permute"
        );
        b.scramble_arena();
        // Slot assignment genuinely differs...
        assert_ne!(
            a.frontend.iter().copied().collect::<Vec<_>>(),
            b.frontend.iter().copied().collect::<Vec<_>>(),
            "scramble left the frontend slot map unchanged"
        );
        // ...yet snapshots and digests are identical,
        assert_eq!(a.state_digest(), b.state_digest());
        // and the machines remain bit-identical under further cycles.
        for _ in 0..2_000 {
            a.step();
            b.step();
        }
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn confusion_totals_match_retired_branches() {
        let mut sim = Simulation::with_defaults(PipelineConfig::shallow(), &workload("crafty"));
        let stats = sim.run(20_000);
        assert_eq!(stats.confusion.total(), stats.branches_retired);
        assert_eq!(stats.confusion.mispredicted(), stats.base_mispredicts);
    }

    #[test]
    fn counters_snapshot_reflects_stats_and_caches() {
        let wl = workload("twolf");
        let ce =
            Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>;
        let mut sim = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce));
        sim.run(20_000);
        let snap = sim.counters();
        let s = sim.stats();
        assert_eq!(snap.get("fetch", "cycles"), Some(s.cycles));
        assert_eq!(snap.get("rob", "retired"), Some(s.retired));
        assert_eq!(
            snap.get("predictor", "branches_retired"),
            Some(s.branches_retired)
        );
        assert_eq!(snap.get("gating", "gated_cycles"), Some(s.gated_cycles));
        assert_eq!(
            snap.get("estimator", "flagged_low"),
            Some(s.confusion.flagged_low())
        );
        assert_eq!(snap.get("cache", "l1_hits"), Some(sim.mem().l1().hits()));
        // Storage gauges come from the controller, not the stats.
        assert!(snap.get("predictor", "storage_bits").unwrap() > 0);
        assert!(snap.get("estimator", "storage_bits").unwrap() > 0);
        // Every advertised group is present.
        for group in ["fetch", "rob", "cache", "predictor", "estimator", "gating"] {
            assert!(
                snap.entries().iter().any(|e| e.group == group),
                "missing group {group}"
            );
        }
    }

    #[test]
    fn counters_diff_between_two_points_is_the_delta() {
        let mut sim = Simulation::with_defaults(PipelineConfig::shallow(), &workload("gcc"));
        sim.run(5_000);
        let before = sim.counters();
        sim.run(5_000);
        let after = sim.counters();
        let delta = after.diff(&before);
        assert_eq!(
            delta.get("rob", "retired"),
            Some(sim.stats().retired - before.get("rob", "retired").unwrap())
        );
        // A gauge keeps the later value rather than subtracting.
        assert_eq!(
            delta.get("predictor", "storage_bits"),
            after.get("predictor", "storage_bits")
        );
    }

    #[test]
    fn observability_never_perturbs_the_run() {
        use perconf_obs::{Profiler, TraceLevel, Tracer};
        let wl = workload("twolf");
        let ce =
            || Box::new(PerceptronCe::new(PerceptronCeConfig::default())) as Box<dyn SimEstimator>;

        let mut plain = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce()));
        let mut observed = Simulation::new(PipelineConfig::deep().gated(1), &wl, controller(ce()));
        let tracer = Tracer::new();
        tracer.set_level(TraceLevel::Verbose);
        // Redundant with the feature off (ZST handle), required with it
        // on (Arc handle); one allow keeps the test identical in both.
        #[allow(clippy::clone_on_copy)]
        observed.set_tracer(tracer.clone());
        let profiler = Profiler::default();
        profiler.enable(true);
        observed.set_profiler(profiler);

        plain.run(20_000);
        observed.run(20_000);

        // The determinism contract: tracing and profiling are derived
        // outputs — the simulated machine is bit-identical either way.
        assert_eq!(plain.stats(), observed.stats());
        assert_eq!(plain.state_digest(), observed.state_digest());
        assert_eq!(plain.counters(), observed.counters());

        if Tracer::COMPILED {
            let (events, _) = tracer.drain();
            assert!(!events.is_empty(), "traced run produced no events");
            assert!(events.iter().any(|e| e.kind_name() == "confidence_bucket"));
            assert!(events.iter().any(|e| e.kind_name() == "branch_resolved"));
        }
    }
}
