use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets).
    #[must_use]
    pub fn sets(&self) -> u64 {
        let s = self.size_bytes / u64::from(self.assoc) / u64::from(self.line_bytes);
        assert!(s > 0, "cache must have at least one set");
        s
    }
}

/// A set-associative, LRU, write-allocate cache model that tracks tags
/// only (no data — the simulator needs latencies, not values).
///
/// # Examples
///
/// ```
/// use perconf_pipeline::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 4096, assoc: 2, line_bytes: 64 });
/// assert!(!c.access(0x1000)); // cold miss (and fill)
/// assert!(c.access(0x1000));  // now a hit
/// assert!(c.access(0x1004));  // same line
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    cfg: CacheConfig,
    // sets[set] is a MRU-ordered list of line addresses.
    sets: Vec<Vec<u64>>,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two, `assoc` is zero,
    /// or the geometry yields no sets or a non-power-of-two set count.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(cfg.assoc > 0, "associativity must be positive");
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: vec![Vec::with_capacity(cfg.assoc as usize); sets as usize],
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    fn line(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Accesses `addr`: returns `true` on hit. On miss the line is
    /// filled (write-allocate), evicting the LRU way if needed. LRU
    /// state is updated either way.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line(addr);
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            // Move to MRU position.
            ways.remove(pos);
            ways.insert(0, line);
            self.hits += 1;
            true
        } else {
            ways.insert(0, line);
            if ways.len() > self.cfg.assoc as usize {
                ways.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Fills `addr`'s line without counting a demand access (used by
    /// the prefetcher). No-op if already present (refreshes LRU).
    pub fn insert(&mut self, addr: u64) {
        let line = self.line(addr);
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            ways.remove(pos);
        }
        ways.insert(0, line);
        if ways.len() > self.cfg.assoc as usize {
            ways.pop();
        }
    }

    /// Checks for presence without touching LRU or counters.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line(addr);
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Demand hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u32 {
        self.cfg.line_bytes
    }
}

/// Hardware stream prefetcher: tracks up to N sequential miss streams
/// and prefetches ahead on a confirmed stream (paper Table 1:
/// "stream-based, 16 streams").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamPrefetcher {
    // (next expected line, confirmed)
    streams: Vec<(u64, bool)>,
    next_victim: usize,
    degree: u32,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with `streams` stream slots prefetching
    /// `degree` lines ahead on each confirmed miss.
    ///
    /// # Panics
    ///
    /// Panics if `streams` or `degree` is zero.
    #[must_use]
    pub fn new(streams: usize, degree: u32) -> Self {
        assert!(streams > 0, "need at least one stream");
        assert!(degree > 0, "prefetch degree must be positive");
        Self {
            streams: vec![(u64::MAX, false); streams],
            next_victim: 0,
            degree,
            issued: 0,
        }
    }

    /// Notifies the prefetcher of a demand access on `line`; returns
    /// the lines to prefetch (empty until a stream is confirmed).
    ///
    /// A stream advances whenever the access matches its expected next
    /// line — **including hits to previously prefetched lines** — so a
    /// confirmed stream stays ahead of the demand front indefinitely.
    /// New candidate streams are allocated only on misses.
    pub fn on_access(&mut self, line: u64, was_miss: bool) -> Vec<u64> {
        if let Some(s) = self.streams.iter_mut().find(|s| s.0 == line) {
            // Stream confirmed (or continuing): advance and run ahead.
            s.0 = line + 1;
            s.1 = true;
            let out: Vec<u64> = (1..=u64::from(self.degree)).map(|d| line + d).collect();
            self.issued += out.len() as u64;
            return out;
        }
        if was_miss {
            // Allocate a new candidate stream expecting the next line.
            // Confirmed streams are protected: random misses may only
            // evict unconfirmed candidates unless every slot is
            // confirmed.
            let n = self.streams.len();
            let v = (0..n)
                .map(|i| (self.next_victim + i) % n)
                .find(|&i| !self.streams[i].1)
                .unwrap_or(self.next_victim);
            self.next_victim = (v + 1) % n;
            self.streams[v] = (line + 1, false);
        }
        Vec::new()
    }

    /// Total prefetches issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// Configuration of the full data-memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemHierarchyConfig {
    /// L1 data cache geometry (Table 1: 32K, 8-way, 64-byte lines).
    pub l1: CacheConfig,
    /// Unified L2 geometry (Table 1: 1M, 8-way, 64-byte lines).
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// Additional cycles for an L2 hit.
    pub l2_latency: u32,
    /// Additional cycles for a memory access.
    pub mem_latency: u32,
    /// Number of prefetch streams (0 disables prefetching).
    pub prefetch_streams: u32,
    /// Prefetch degree (lines ahead per confirmed miss).
    pub prefetch_degree: u32,
}

impl Default for MemHierarchyConfig {
    /// The paper's Table 1 memory subsystem.
    fn default() -> Self {
        Self {
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 8,
                line_bytes: 64,
            },
            l1_latency: 3,
            l2_latency: 12,
            mem_latency: 180,
            prefetch_streams: 16,
            prefetch_degree: 4,
        }
    }
}

/// Two-level data cache hierarchy with a stream prefetcher filling
/// into L2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemHierarchy {
    cfg: MemHierarchyConfig,
    l1: Cache,
    l2: Cache,
    prefetcher: Option<StreamPrefetcher>,
}

impl MemHierarchy {
    /// Builds the hierarchy.
    #[must_use]
    pub fn new(cfg: MemHierarchyConfig) -> Self {
        Self {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            prefetcher: if cfg.prefetch_streams > 0 {
                Some(StreamPrefetcher::new(
                    cfg.prefetch_streams as usize,
                    cfg.prefetch_degree,
                ))
            } else {
                None
            },
            cfg,
        }
    }

    /// Performs a load and returns its latency in cycles.
    pub fn load(&mut self, addr: u64) -> u32 {
        let hit = self.l1.access(addr);
        self.notify_prefetcher(addr, !hit);
        if hit {
            return self.cfg.l1_latency;
        }
        if self.l2.access(addr) {
            self.cfg.l1_latency + self.cfg.l2_latency
        } else {
            self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.mem_latency
        }
    }

    fn notify_prefetcher(&mut self, addr: u64, was_miss: bool) {
        let line = addr >> self.l1.line_shift;
        if let Some(pf) = &mut self.prefetcher {
            let lb = u64::from(self.cfg.l2.line_bytes);
            for pline in pf.on_access(line, was_miss) {
                // Stream prefetches fill both levels, like the L1
                // streaming buffers of P4-class machines.
                self.l2.insert(pline * lb);
                self.l1.insert(pline * lb);
            }
        }
    }

    /// Performs a store: updates cache state (write-allocate) but
    /// returns no latency — store completion is hidden by the store
    /// buffer in the pipeline model.
    pub fn store(&mut self, addr: u64) {
        let hit = self.l1.access(addr);
        self.notify_prefetcher(addr, !hit);
        if !hit {
            let _ = self.l2.access(addr);
        }
    }

    /// The L1 cache (for inspection in tests/experiments).
    #[must_use]
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache.
    #[must_use]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Total prefetches issued by the stream prefetcher (0 when
    /// prefetching is disabled).
    #[must_use]
    pub fn prefetch_issued(&self) -> u64 {
        self.prefetcher.as_ref().map_or(0, StreamPrefetcher::issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 2 * 64 * 4, // 4 sets, 2 ways
            assoc: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3F)); // same line
        assert!(!c.access(0x40)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to the same set (4 sets, 64B lines →
        // stride 256 aliases).
        let a = 0x000;
        let b = 0x400;
        let d = 0x800;
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU, b is LRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn insert_does_not_count_demand() {
        let mut c = small();
        c.insert(0x0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0x0));
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn prefetcher_confirms_on_second_sequential_miss() {
        let mut pf = StreamPrefetcher::new(4, 2);
        assert!(pf.on_access(100, true).is_empty()); // allocates stream → 101
        let out = pf.on_access(101, true); // confirmed
        assert_eq!(out, vec![102, 103]);
        assert_eq!(pf.issued(), 2);
    }

    #[test]
    fn prefetcher_advances_on_hits_to_prefetched_lines() {
        let mut pf = StreamPrefetcher::new(4, 2);
        let _ = pf.on_access(100, true);
        let _ = pf.on_access(101, true);
        // Line 102 was prefetched — it arrives as a *hit*, and the
        // stream must keep running ahead anyway.
        let out = pf.on_access(102, false);
        assert_eq!(out, vec![103, 104]);
    }

    #[test]
    fn prefetcher_ignores_random_misses() {
        let mut pf = StreamPrefetcher::new(4, 2);
        assert!(pf.on_access(10, true).is_empty());
        assert!(pf.on_access(500, true).is_empty());
        assert!(pf.on_access(90, true).is_empty());
    }

    #[test]
    fn prefetcher_does_not_allocate_on_hits() {
        let mut pf = StreamPrefetcher::new(1, 2);
        assert!(pf.on_access(10, false).is_empty());
        // The single slot is still free for a real miss stream.
        let _ = pf.on_access(20, true);
        assert_eq!(pf.on_access(21, true), vec![22, 23]);
    }

    #[test]
    fn hierarchy_latencies_are_ordered() {
        let mut h = MemHierarchy::new(MemHierarchyConfig::default());
        let miss = h.load(0x10_0000);
        let hit = h.load(0x10_0000);
        assert!(miss > hit);
        assert_eq!(hit, 3);
        assert_eq!(miss, 3 + 12 + 180);
    }

    #[test]
    fn sequential_stream_gets_prefetched_into_l2() {
        let mut h = MemHierarchy::new(MemHierarchyConfig::default());
        // Walk sequential lines; after confirmation the L2 should be
        // warmed ahead so misses cost only L1+L2.
        let mut full_misses = 0;
        for i in 0..32u64 {
            let lat = h.load(i * 64);
            if lat > 3 + 14 {
                full_misses += 1;
            }
        }
        assert!(full_misses <= 3, "full_misses={full_misses}");
    }

    #[test]
    fn store_fills_l1() {
        let mut h = MemHierarchy::new(MemHierarchyConfig::default());
        h.store(0x40);
        assert_eq!(h.load(0x40), 3);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 4096,
            assoc: 2,
            line_bytes: 48,
        });
    }
}
