//! Batched multi-simulation execution.
//!
//! [`BatchSim`] interleaves N fully independent [`Simulation`]s
//! through one cycle loop, round-robining one cycle per member per
//! sweep. Members share nothing — each owns its workload generator,
//! predictor/estimator tables, caches, and statistics — so the
//! interleaving is invisible to any single member: every member's
//! cycle-by-cycle evolution, final statistics, and snapshot bytes are
//! identical to running it alone. What batching buys is locality
//! across *table walks*: while one member's predictor lookup is
//! resolving in the cache hierarchy, the loop advances its siblings,
//! which hides per-structure access latency exactly where sweep grids
//! run many simulations per cell.
//!
//! # Determinism contract
//!
//! For every batch width, member order, and interleave schedule,
//! member `i`'s results are byte-identical to a sequential run of the
//! same simulation: same [`SimStats`](crate::SimStats), same state
//! digest, same serialized snapshot. The differential suite in
//! `tests/batch_determinism.rs` pins this, including under
//! checkpoint/resume, fault injection, and enabled counters/tracing.

use crate::sim::{SimError, Simulation};

/// N independent simulations advanced through one cycle loop.
#[derive(Debug)]
pub struct BatchSim {
    sims: Vec<Simulation>,
}

impl BatchSim {
    /// Wraps the given simulations for batched execution.
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty.
    #[must_use]
    pub fn new(sims: Vec<Simulation>) -> Self {
        assert!(!sims.is_empty(), "batch needs at least one member");
        Self { sims }
    }

    /// Number of member simulations.
    #[must_use]
    pub fn width(&self) -> usize {
        self.sims.len()
    }

    /// Member `i`, immutably.
    #[must_use]
    pub fn get(&self, i: usize) -> &Simulation {
        &self.sims[i]
    }

    /// Member `i`, mutably (for per-member phase work such as
    /// [`try_warmup`](Simulation::try_warmup) or checkpointing).
    pub fn get_mut(&mut self, i: usize) -> &mut Simulation {
        &mut self.sims[i]
    }

    /// All members, in construction order.
    #[must_use]
    pub fn sims(&self) -> &[Simulation] {
        &self.sims
    }

    /// Unwraps the members, in construction order.
    #[must_use]
    pub fn into_sims(self) -> Vec<Simulation> {
        self.sims
    }

    /// Advances member `i` until `uops[i]` further correct-path uops
    /// retire, interleaving one cycle per still-active member per
    /// sweep. A member given `0` is not stepped at all.
    ///
    /// Per-member semantics — target, stall deadline, and the
    /// resulting [`SimError::Stalled`] — are exactly those of
    /// [`Simulation::try_run`] on that member alone. A member that
    /// errors is dropped from the rotation (its entry carries the
    /// error; the simulation is left at the failing cycle) while the
    /// rest continue to their targets.
    ///
    /// # Errors
    ///
    /// The per-member slot is `Err` if that member stalled past its
    /// deadline or broke a simulator invariant.
    ///
    /// # Panics
    ///
    /// Panics if `uops.len() != self.width()`.
    pub fn try_run_each(&mut self, uops: &[u64]) -> Vec<Result<(), SimError>> {
        assert_eq!(uops.len(), self.sims.len(), "one uop target per member");
        let mut out: Vec<Result<(), SimError>> = uops.iter().map(|_| Ok(())).collect();
        let mut targets = Vec::with_capacity(self.sims.len());
        let mut deadlines = Vec::with_capacity(self.sims.len());
        let mut active: Vec<usize> = Vec::with_capacity(self.sims.len());
        for (i, (&u, sim)) in uops.iter().zip(&self.sims).enumerate() {
            targets.push(sim.stats().retired + u);
            deadlines.push(sim.now() + u.max(1_000) * 400);
            if u > 0 {
                active.push(i);
            }
        }
        while !active.is_empty() {
            let mut k = 0;
            while k < active.len() {
                let i = active[k];
                let sim = &mut self.sims[i];
                if let Err(e) = sim.try_step() {
                    out[i] = Err(e);
                    active.remove(k);
                    continue;
                }
                if sim.stats().retired >= targets[i] {
                    active.remove(k);
                    continue;
                }
                if sim.now() >= deadlines[i] {
                    out[i] = Err(SimError::Stalled {
                        retired: sim.stats().retired,
                        target: targets[i],
                        cycle: sim.now(),
                    });
                    active.remove(k);
                    continue;
                }
                k += 1;
            }
        }
        out
    }

    /// [`try_run_each`](Self::try_run_each) with the same uop target
    /// for every member.
    pub fn try_run(&mut self, uops: u64) -> Vec<Result<(), SimError>> {
        let targets = vec![uops; self.sims.len()];
        self.try_run_each(&targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineConfig;
    use perconf_bpred::Snapshot;

    fn sim_for(bench: &str, cfg: PipelineConfig) -> Simulation {
        let wl = perconf_workload::spec2000_config(bench).expect("known benchmark");
        Simulation::with_defaults(cfg, &wl)
    }

    #[test]
    fn batch_members_match_sequential_runs() {
        let benches = ["gcc", "twolf", "mcf"];
        let mut expected = Vec::new();
        for b in &benches {
            let mut sim = sim_for(b, PipelineConfig::deep());
            sim.try_run(5_000).unwrap();
            expected.push((sim.stats().clone(), sim.state_digest()));
        }
        let mut batch = BatchSim::new(
            benches
                .iter()
                .map(|b| sim_for(b, PipelineConfig::deep()))
                .collect(),
        );
        for r in batch.try_run(5_000) {
            r.unwrap();
        }
        for (i, (stats, digest)) in expected.iter().enumerate() {
            assert_eq!(batch.get(i).stats(), stats, "member {i} stats diverged");
            assert_eq!(
                batch.get(i).state_digest(),
                *digest,
                "member {i} state diverged"
            );
        }
    }

    #[test]
    fn uneven_targets_and_zero_width_members() {
        // The contract is call-for-call equivalence with `try_run` —
        // a step may overshoot its retire target by up to the machine
        // width, so split runs must be compared against equally split
        // sequential runs.
        let mut solo = sim_for("gcc", PipelineConfig::shallow());
        solo.try_run(1_500).unwrap();
        solo.try_run(2_500).unwrap();

        let mut batch = BatchSim::new(vec![
            sim_for("gcc", PipelineConfig::shallow()),
            sim_for("twolf", PipelineConfig::deep()),
        ]);
        // Two uneven calls whose member-0 legs match the solo calls;
        // the zero leg must leave member 0 completely untouched.
        for r in batch.try_run_each(&[1_500, 3_000]) {
            r.unwrap();
        }
        let d0 = batch.get(0).state_digest();
        for r in batch.try_run_each(&[0, 2_000]) {
            r.unwrap();
        }
        assert_eq!(batch.get(0).state_digest(), d0, "zero target must not step");
        for r in batch.try_run_each(&[2_500, 0]) {
            r.unwrap();
        }
        assert_eq!(batch.get(0).stats(), solo.stats());
        assert_eq!(batch.get(0).state_digest(), solo.state_digest());
    }

    #[test]
    fn width_one_batch_is_the_sequential_engine() {
        let mut solo = sim_for("twolf", PipelineConfig::deep());
        solo.try_run(6_000).unwrap();
        let mut batch = BatchSim::new(vec![sim_for("twolf", PipelineConfig::deep())]);
        for r in batch.try_run(6_000) {
            r.unwrap();
        }
        assert_eq!(batch.get(0).state_digest(), solo.state_digest());
        assert_eq!(batch.get(0).stats(), solo.stats());
    }

    #[test]
    fn warmup_between_batched_legs_matches_sequential() {
        let mut solo = sim_for("gcc", PipelineConfig::deep());
        solo.try_run(3_000).unwrap();
        solo.try_warmup(0).unwrap();
        solo.try_run(3_000).unwrap();

        let mut batch = BatchSim::new(vec![
            sim_for("gcc", PipelineConfig::deep()),
            sim_for("mcf", PipelineConfig::deep()),
        ]);
        for r in batch.try_run(3_000) {
            r.unwrap();
        }
        batch.get_mut(0).try_warmup(0).unwrap();
        batch.get_mut(1).try_warmup(0).unwrap();
        for r in batch.try_run(3_000) {
            r.unwrap();
        }
        assert_eq!(batch.get(0).stats(), solo.stats());
        assert_eq!(batch.get(0).state_digest(), solo.state_digest());
    }
}
