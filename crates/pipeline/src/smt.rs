//! A two-context SMT version of the simulator — the paper's §1
//! motivation made concrete: *"the mis-speculative execution consumes
//! resources that could have been allocated to useful work, such as
//! another thread on a multithreaded processor"* (citing Luo et al.,
//! "Boosting SMT Performance by Speculation Control").
//!
//! Two hardware threads share the fetch port (one thread fetches per
//! cycle), the execution units, the scheduler capacity and the memory
//! hierarchy; each has its own front-end queue, ROB half, load/store
//! buffer half, branch predictor, confidence estimator and gate
//! counter. When pipeline gating stalls one thread's fetch, the *other
//! thread takes the slot* — so an accurate confidence estimator turns
//! one thread's wrong-path work directly into the other thread's
//! throughput.

use crate::cache::MemHierarchy;
use crate::config::PipelineConfig;
use crate::sim::Controller;
use crate::stats::SimStats;
use perconf_core::GateCounter;
use perconf_workload::{Uop, UopKind, WorkloadConfig, WorkloadGenerator};
use std::collections::{BTreeSet, VecDeque};

const STATUS_WINDOW: usize = 1 << 14;
const CP_RING: usize = 128;

/// Fetch arbitration between the two hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FetchPolicy {
    /// Strict alternation between ready threads.
    #[default]
    RoundRobin,
    /// ICOUNT (Tullsen): fetch for the thread with fewer uops in
    /// flight, favouring fast-moving threads.
    Icount,
}

#[derive(Debug, Clone, Copy)]
struct SlotStatus {
    seq: u64,
    completed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Int,
    Mem,
    Fp,
}

fn class_of(kind: UopKind) -> Class {
    match kind {
        UopKind::IntAlu | UopKind::IntMul | UopKind::Branch => Class::Int,
        UopKind::Load | UopKind::Store => Class::Mem,
        UopKind::Fp => Class::Fp,
    }
}

#[derive(Debug, Clone)]
struct Inflight {
    seq: u64,
    uop: Uop,
    wrong_path: bool,
    decision: Option<perconf_core::BranchDecision>,
    prod1: Option<u64>,
    prod2: Option<u64>,
    arrival: u64,
    issued: bool,
    completed: bool,
    complete_at: u64,
}

/// One hardware thread's private state.
struct Thread {
    gen: WorkloadGenerator,
    ctl: Controller,
    frontend: VecDeque<Inflight>,
    rob: VecDeque<Inflight>,
    status: Vec<SlotStatus>,
    cp_ring: [u64; CP_RING],
    cp_index: u64,
    gate: GateCounter,
    gate_pending: VecDeque<(u64, u64)>,
    gate_counted: BTreeSet<u64>,
    fetch_history: u64,
    wrong_path_since: Option<u64>,
    restore_history: u64,
    redirect_until: u64,
    next_seq: u64,
    sched_occ: [usize; 3],
    ldq_occ: usize,
    stq_occ: usize,
    stats: SimStats,
}

impl Thread {
    fn new(workload: &WorkloadConfig, ctl: Controller, cfg: &PipelineConfig) -> Self {
        Self {
            gen: WorkloadGenerator::new(workload),
            ctl,
            frontend: VecDeque::new(),
            rob: VecDeque::new(),
            status: vec![
                SlotStatus {
                    seq: u64::MAX,
                    completed: true,
                };
                STATUS_WINDOW
            ],
            cp_ring: [u64::MAX; CP_RING],
            cp_index: 0,
            gate: GateCounter::new(cfg.gating.map_or(1, |g| g.counter_threshold)),
            gate_pending: VecDeque::new(),
            gate_counted: BTreeSet::new(),
            fetch_history: 0,
            wrong_path_since: None,
            restore_history: 0,
            redirect_until: 0,
            next_seq: 0,
            sched_occ: [0; 3],
            ldq_occ: 0,
            stq_occ: 0,
            stats: SimStats::default(),
        }
    }

    fn in_flight(&self) -> usize {
        self.frontend.len() + self.rob.len()
    }

    fn is_complete(&self, seq: u64) -> bool {
        let slot = self.status[seq as usize % STATUS_WINDOW];
        slot.seq != seq || slot.completed
    }

    fn mark_complete(&mut self, seq: u64) {
        let slot = &mut self.status[seq as usize % STATUS_WINDOW];
        if slot.seq == seq {
            slot.completed = true;
        }
    }

    fn release_gate(&mut self, seq: u64) {
        if self.gate_counted.remove(&seq) {
            self.gate.on_low_conf_resolve();
        } else if !self.gate_pending.is_empty() {
            self.gate_pending.retain(|&(_, s)| s != seq);
        }
    }
}

/// A 2-thread SMT processor sharing fetch, execution and memory.
///
/// # Examples
///
/// ```no_run
/// use perconf_pipeline::{PipelineConfig, SmtSimulation, FetchPolicy, Simulation};
/// use perconf_workload::spec2000_config;
///
/// let a = spec2000_config("gzip").unwrap();
/// let b = spec2000_config("mcf").unwrap();
/// let mut smt = SmtSimulation::with_defaults(
///     PipelineConfig::deep(),
///     FetchPolicy::Icount,
///     &a,
///     &b,
/// );
/// smt.run_cycles(100_000);
/// println!("combined IPC: {:.2}", smt.combined_ipc());
/// ```
pub struct SmtSimulation {
    cfg: PipelineConfig,
    policy: FetchPolicy,
    threads: [Thread; 2],
    mem: MemHierarchy,
    now: u64,
    cycles: u64,
    last_fetched: usize,
}

impl std::fmt::Debug for SmtSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtSimulation")
            .field("cycle", &self.now)
            .field("retired0", &self.threads[0].stats.retired)
            .field("retired1", &self.threads[1].stats.retired)
            .finish_non_exhaustive()
    }
}

impl SmtSimulation {
    /// Builds an SMT pair from per-thread controllers. Per-thread ROB,
    /// load/store buffers and front-end capacity are half of `cfg`'s;
    /// scheduler windows, execution units, fetch bandwidth and the
    /// memory hierarchy are shared.
    #[must_use]
    pub fn new(
        cfg: PipelineConfig,
        policy: FetchPolicy,
        a: (&WorkloadConfig, Controller),
        b: (&WorkloadConfig, Controller),
    ) -> Self {
        Self {
            threads: [Thread::new(a.0, a.1, &cfg), Thread::new(b.0, b.1, &cfg)],
            mem: MemHierarchy::new(cfg.mem),
            now: 0,
            cycles: 0,
            last_fetched: 1,
            cfg,
            policy,
        }
    }

    /// Builds an SMT pair with the default predictor and no estimator
    /// on both threads.
    #[must_use]
    pub fn with_defaults(
        cfg: PipelineConfig,
        policy: FetchPolicy,
        a: &WorkloadConfig,
        b: &WorkloadConfig,
    ) -> Self {
        let mk = || {
            perconf_core::SpeculationController::new(
                Box::new(perconf_bpred::baseline_bimodal_gshare())
                    as Box<dyn perconf_bpred::SimPredictor>,
                Box::new(perconf_core::AlwaysHigh) as Box<dyn perconf_core::SimEstimator>,
            )
        };
        Self::new(cfg, policy, (a, mk()), (b, mk()))
    }

    /// Per-thread statistics.
    #[must_use]
    pub fn stats(&self, thread: usize) -> &SimStats {
        &self.threads[thread].stats
    }

    /// Cycles simulated.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Combined retired uops per cycle across both threads.
    #[must_use]
    pub fn combined_ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.threads[0].stats.retired + self.threads[1].stats.retired) as f64 / self.cycles as f64
    }

    /// Runs for a fixed number of cycles (SMT throughput comparisons
    /// hold cycles constant and compare work done).
    pub fn run_cycles(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until warm, then clears statistics.
    pub fn warmup_cycles(&mut self, cycles: u64) {
        self.run_cycles(cycles);
        self.cycles = 0;
        for t in &mut self.threads {
            t.stats.reset();
        }
    }

    fn step(&mut self) {
        self.now += 1;
        for t in 0..2 {
            self.retire(t);
        }
        for t in 0..2 {
            self.complete_and_resolve(t);
        }
        self.issue_shared();
        for t in 0..2 {
            self.dispatch(t);
        }
        self.fetch_arbitrated();
        self.cycles += 1;
        for t in &mut self.threads {
            t.stats.cycles += 1;
        }
    }

    fn retire(&mut self, ti: usize) {
        let width = self.cfg.width;
        let t = &mut self.threads[ti];
        let mut n = 0;
        while n < width {
            let Some(head) = t.rob.front() else { break };
            if !(head.completed && head.complete_at < self.now) {
                break;
            }
            let e = t.rob.pop_front().expect("head exists");
            match e.uop.kind {
                UopKind::Load => t.ldq_occ -= 1,
                UopKind::Store => t.stq_occ -= 1,
                _ => {}
            }
            t.stats.retired += 1;
            if let Some(d) = e.decision {
                let actual = e.uop.branch.expect("branch has payload").taken;
                let out = t.ctl.train(&d, actual);
                t.stats.branches_retired += 1;
                if out.base_mispredicted {
                    t.stats.base_mispredicts += 1;
                }
                if out.speculated_mispredicted {
                    t.stats.speculated_mispredicts += 1;
                }
                t.stats
                    .confusion
                    .record(out.base_mispredicted, d.estimate.is_low());
            }
            n += 1;
        }
    }

    fn complete_and_resolve(&mut self, ti: usize) {
        loop {
            let now = self.now;
            let t = &mut self.threads[ti];
            let Some(idx) = t
                .rob
                .iter()
                .position(|e| e.issued && !e.completed && e.complete_at <= now)
            else {
                break;
            };
            let (seq, is_branch, wrong_path) = {
                let e = &mut t.rob[idx];
                e.completed = true;
                (e.seq, e.uop.kind == UopKind::Branch, e.wrong_path)
            };
            t.mark_complete(seq);
            if is_branch {
                t.release_gate(seq);
                let mispredicted = {
                    let e = &t.rob[idx];
                    match (&e.decision, e.uop.branch) {
                        (Some(d), Some(br)) if !wrong_path => d.speculated_taken != br.taken,
                        _ => false,
                    }
                };
                if mispredicted {
                    // Squash younger in this thread only.
                    while t.frontend.back().is_some_and(|e| e.seq > seq) {
                        let e = t.frontend.pop_back().expect("non-empty");
                        t.mark_complete(e.seq);
                        t.stats.squashed += 1;
                        if e.uop.kind == UopKind::Branch {
                            t.release_gate(e.seq);
                        }
                    }
                    while t.rob.back().is_some_and(|e| e.seq > seq) {
                        let e = t.rob.pop_back().expect("non-empty");
                        t.mark_complete(e.seq);
                        t.stats.squashed += 1;
                        if !e.issued {
                            t.sched_occ[class_of(e.uop.kind) as usize] -= 1;
                        }
                        match e.uop.kind {
                            UopKind::Load => t.ldq_occ -= 1,
                            UopKind::Store => t.stq_occ -= 1,
                            _ => {}
                        }
                        if e.uop.kind == UopKind::Branch {
                            t.release_gate(e.seq);
                        }
                    }
                    t.fetch_history = t.restore_history;
                    t.wrong_path_since = None;
                    t.redirect_until = now + 1;
                    t.stats.squashes += 1;
                }
            }
        }
    }

    fn issue_shared(&mut self) {
        let mut avail = [self.cfg.units_int, self.cfg.units_mem, self.cfg.units_fp];
        // Alternate which thread gets first pick each cycle.
        let first = (self.now % 2) as usize;
        for ti in [first, 1 - first] {
            let now = self.now;
            let mut to_issue = Vec::new();
            {
                let t = &self.threads[ti];
                for (idx, e) in t.rob.iter().enumerate() {
                    if avail == [0, 0, 0] {
                        break;
                    }
                    if e.issued {
                        continue;
                    }
                    let c = class_of(e.uop.kind) as usize;
                    if avail[c] == 0 {
                        continue;
                    }
                    let ready = e.prod1.is_none_or(|p| t.is_complete(p))
                        && e.prod2.is_none_or(|p| t.is_complete(p));
                    if ready {
                        avail[c] -= 1;
                        to_issue.push(idx);
                    }
                }
            }
            for idx in to_issue {
                let (kind, addr, wrong_path) = {
                    let e = &self.threads[ti].rob[idx];
                    (e.uop.kind, e.uop.mem.map(|m| m.addr), e.wrong_path)
                };
                let latency = match kind {
                    UopKind::IntAlu | UopKind::Branch => 1,
                    UopKind::IntMul => 3,
                    UopKind::Fp => 4,
                    UopKind::Store => {
                        // Thread address spaces are disjoint halves of
                        // the physical space (simple ASID model).
                        self.mem
                            .store(addr.expect("store addr") | (ti as u64) << 40);
                        1
                    }
                    UopKind::Load => self.mem.load(addr.expect("load addr") | (ti as u64) << 40),
                };
                let t = &mut self.threads[ti];
                let e = &mut t.rob[idx];
                e.issued = true;
                e.complete_at = now + u64::from(latency);
                t.sched_occ[class_of(kind) as usize] -= 1;
                if wrong_path {
                    t.stats.executed_wrong += 1;
                } else {
                    t.stats.executed_correct += 1;
                }
            }
        }
    }

    fn dispatch(&mut self, ti: usize) {
        let width = self.cfg.width;
        let rob_cap = self.cfg.rob_size / 2;
        let other_occ = self.threads[1 - ti].sched_occ;
        let now = self.now;
        let t = &mut self.threads[ti];
        let mut n = 0;
        while n < width {
            let Some(head) = t.frontend.front() else {
                break;
            };
            if head.arrival > now || t.rob.len() >= rob_cap {
                break;
            }
            let c = class_of(head.uop.kind);
            let cap = match c {
                Class::Int => self.cfg.sched_int,
                Class::Mem => self.cfg.sched_mem,
                Class::Fp => self.cfg.sched_fp,
            };
            // Scheduler windows are shared across threads.
            if t.sched_occ[c as usize] + other_occ[c as usize] >= cap {
                break;
            }
            match head.uop.kind {
                UopKind::Load if t.ldq_occ >= self.cfg.load_buffers / 2 => break,
                UopKind::Store if t.stq_occ >= self.cfg.store_buffers / 2 => break,
                _ => {}
            }
            let e = t.frontend.pop_front().expect("head exists");
            t.sched_occ[c as usize] += 1;
            match e.uop.kind {
                UopKind::Load => t.ldq_occ += 1,
                UopKind::Store => t.stq_occ += 1,
                _ => {}
            }
            t.rob.push_back(e);
            n += 1;
        }
    }

    fn thread_can_fetch(&self, ti: usize) -> bool {
        let t = &self.threads[ti];
        if self.now < t.redirect_until {
            return false;
        }
        if self.cfg.gating.is_some() && t.gate.should_gate() {
            return false;
        }
        t.frontend.len() < self.cfg.frontend_capacity() / 2
    }

    fn fetch_arbitrated(&mut self) {
        for ti in 0..2 {
            let now = self.now;
            let t = &mut self.threads[ti];
            while let Some(&(cycle, seq)) = t.gate_pending.front() {
                if cycle > now {
                    break;
                }
                t.gate_pending.pop_front();
                if !t.is_complete(seq) {
                    t.gate.on_low_conf_fetch();
                    t.gate_counted.insert(seq);
                }
            }
        }
        let candidates: Vec<usize> = (0..2).filter(|&t| self.thread_can_fetch(t)).collect();
        let chosen = match candidates.as_slice() {
            [] => {
                for t in &mut self.threads {
                    if self.cfg.gating.is_some() && t.gate.should_gate() {
                        t.stats.gated_cycles += 1;
                    }
                }
                return;
            }
            [only] => *only,
            _ => match self.policy {
                FetchPolicy::RoundRobin => {
                    let next = 1 - self.last_fetched;
                    self.last_fetched = next;
                    next
                }
                FetchPolicy::Icount => {
                    if self.threads[0].in_flight() <= self.threads[1].in_flight() {
                        0
                    } else {
                        1
                    }
                }
            },
        };
        // Account gated cycles for the thread(s) that were excluded by
        // the gate specifically.
        for ti in 0..2 {
            if ti != chosen && self.cfg.gating.is_some() && self.threads[ti].gate.should_gate() {
                self.threads[ti].stats.gated_cycles += 1;
            }
        }
        self.fetch_into(chosen);
    }

    fn fetch_into(&mut self, ti: usize) {
        let width = self.cfg.width;
        let cap = self.cfg.frontend_capacity() / 2;
        let depth = u64::from(self.cfg.frontend_depth);
        let gating = self.cfg.gating;
        let now = self.now;
        let t = &mut self.threads[ti];
        for _ in 0..width {
            if t.frontend.len() >= cap {
                break;
            }
            let wrong = t.wrong_path_since.is_some();
            let uop = if wrong {
                t.gen.next_wrong_path()
            } else {
                t.gen.next_uop()
            };
            let seq = t.next_seq;
            t.next_seq += 1;
            t.status[seq as usize % STATUS_WINDOW] = SlotStatus {
                seq,
                completed: false,
            };
            let lookup = |dist: u32| -> Option<u64> {
                if dist == 0 {
                    return None;
                }
                if wrong {
                    return seq.checked_sub(u64::from(dist));
                }
                let d = u64::from(dist);
                if d > t.cp_index || d as usize > CP_RING {
                    return None;
                }
                let s = t.cp_ring[(t.cp_index - d) as usize % CP_RING];
                if s == u64::MAX {
                    None
                } else {
                    Some(s)
                }
            };
            let (prod1, prod2) = (lookup(uop.src1), lookup(uop.src2));
            let mut inf = Inflight {
                seq,
                uop,
                wrong_path: wrong,
                decision: None,
                prod1,
                prod2,
                arrival: now + depth,
                issued: false,
                completed: false,
                complete_at: u64::MAX,
            };
            if let Some(br) = uop.branch {
                let d = t.ctl.decide(br.pc, t.fetch_history);
                t.fetch_history = (t.fetch_history << 1) | u64::from(d.speculated_taken);
                if let Some(g) = gating {
                    if d.gates() {
                        t.gate_pending
                            .push_back((now + u64::from(g.ce_latency), seq));
                    }
                }
                if !wrong && d.speculated_taken != br.taken {
                    t.wrong_path_since = Some(seq);
                    t.restore_history = (d.ctx.history << 1) | u64::from(br.taken);
                }
                inf.decision = Some(d);
            }
            if wrong {
                t.stats.fetched_wrong += 1;
            } else {
                t.cp_ring[t.cp_index as usize % CP_RING] = seq;
                t.cp_index += 1;
                t.stats.fetched_correct += 1;
            }
            t.frontend.push_back(inf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perconf_core::{PerceptronCe, PerceptronCeConfig, SpeculationController};

    fn wl(name: &str) -> WorkloadConfig {
        perconf_workload::spec2000_config(name).unwrap()
    }

    fn gated_controller() -> Controller {
        SpeculationController::new(
            Box::new(perconf_bpred::baseline_bimodal_gshare())
                as Box<dyn perconf_bpred::SimPredictor>,
            Box::new(PerceptronCe::new(PerceptronCeConfig::default()))
                as Box<dyn perconf_core::SimEstimator>,
        )
    }

    #[test]
    fn both_threads_make_progress() {
        let mut smt = SmtSimulation::with_defaults(
            PipelineConfig::shallow(),
            FetchPolicy::RoundRobin,
            &wl("gzip"),
            &wl("gcc"),
        );
        smt.run_cycles(30_000);
        assert!(smt.stats(0).retired > 1_000, "t0 {}", smt.stats(0).retired);
        assert!(smt.stats(1).retired > 1_000, "t1 {}", smt.stats(1).retired);
        assert!(smt.combined_ipc() > 0.2);
    }

    #[test]
    fn icount_favours_the_faster_thread() {
        // eon (few mispredicts) vs mcf (memory bound, many squashes):
        // under ICOUNT the fast thread should retire clearly more.
        let mut smt = SmtSimulation::with_defaults(
            PipelineConfig::shallow(),
            FetchPolicy::Icount,
            &wl("eon"),
            &wl("mcf"),
        );
        smt.run_cycles(40_000);
        assert!(smt.stats(0).retired > smt.stats(1).retired);
    }

    #[test]
    fn smt_throughput_beats_half_a_core() {
        // Two threads sharing one core should beat a single thread's
        // IPC on the same core (that is the point of SMT).
        let mut single =
            crate::sim::Simulation::with_defaults(PipelineConfig::shallow(), &wl("twolf"));
        single.warmup(30_000);
        let single_ipc = single.run(60_000).ipc();

        let mut smt = SmtSimulation::with_defaults(
            PipelineConfig::shallow(),
            FetchPolicy::Icount,
            &wl("twolf"),
            &wl("gzip"),
        );
        smt.warmup_cycles(30_000);
        smt.run_cycles(60_000);
        assert!(
            smt.combined_ipc() > single_ipc,
            "smt {:.3} vs single {:.3}",
            smt.combined_ipc(),
            single_ipc
        );
    }

    #[test]
    fn gating_the_noisy_thread_helps_its_neighbour() {
        // Thread 1 runs vpr (frequent, fast-resolving mispredicts, so
        // it keeps re-filling its front end with wrong-path uops);
        // only *it* is gated. Each gated cycle hands the fetch slot to
        // gzip, which should retire more than in the ungated pair —
        // the Luo et al. SMT speculation-control result.
        let base_cfg = PipelineConfig::deep();
        let mut base = SmtSimulation::with_defaults(
            base_cfg,
            FetchPolicy::RoundRobin,
            &wl("gzip"),
            &wl("vpr"),
        );
        base.warmup_cycles(40_000);
        base.run_cycles(120_000);

        let ungated_controller = || {
            SpeculationController::new(
                Box::new(perconf_bpred::baseline_bimodal_gshare())
                    as Box<dyn perconf_bpred::SimPredictor>,
                Box::new(perconf_core::AlwaysHigh) as Box<dyn perconf_core::SimEstimator>,
            )
        };
        let mut gated = SmtSimulation::new(
            base_cfg.gated(1),
            FetchPolicy::RoundRobin,
            (&wl("gzip"), ungated_controller()),
            (&wl("vpr"), gated_controller()),
        );
        gated.warmup_cycles(40_000);
        gated.run_cycles(120_000);

        let neighbour_gain = gated.stats(0).retired as f64 / base.stats(0).retired as f64;
        assert!(
            neighbour_gain > 1.01,
            "gating vpr should boost gzip: gain {neighbour_gain:.3}"
        );
        // And the noisy thread's wrong-path fetch must drop.
        assert!(gated.stats(1).fetched_wrong < base.stats(1).fetched_wrong);
    }

    #[test]
    fn per_thread_wrong_path_squash_does_not_cross_threads() {
        let mut smt = SmtSimulation::with_defaults(
            PipelineConfig::shallow(),
            FetchPolicy::RoundRobin,
            &wl("vpr"),
            &wl("vortex"),
        );
        smt.run_cycles(30_000);
        // vortex barely mispredicts: nearly all squashed uops belong
        // to vpr.
        assert!(smt.stats(0).squashed > smt.stats(1).squashed);
    }
}
