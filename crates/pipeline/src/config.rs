use crate::cache::MemHierarchyConfig;
use serde::{Deserialize, Serialize};

/// Pipeline-gating parameters (paper Figure 1 and §5.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GatingConfig {
    /// Low-confidence branch counter threshold — the `n` of the
    /// paper's `PLn` notation (gate fetch while `count >= n`).
    pub counter_threshold: u32,
    /// Confidence-estimator latency in cycles: a fetched branch's
    /// low-confidence flag becomes visible to the gate this many
    /// cycles after fetch (§5.4.2 compares 1 vs 9).
    pub ce_latency: u32,
}

impl Default for GatingConfig {
    fn default() -> Self {
        Self {
            counter_threshold: 1,
            ce_latency: 1,
        }
    }
}

/// Full structural configuration of the simulated processor.
///
/// The defaults follow the paper's Table 1 baseline; use
/// [`with_depth_width`](Self::with_depth_width) for the three pipeline
/// shapes the paper studies (20-cycle 4-wide, 20-cycle 8-wide,
/// 40-cycle 4-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Fetch/issue/retire width in uops per cycle.
    pub width: u32,
    /// Front-end depth: cycles from fetch to dispatch. The paper's
    /// "N-cycle pipeline" is the branch-misprediction pipeline length;
    /// the constructor maps it to `N - BACKEND_STAGES`.
    pub frontend_depth: u32,
    /// Reorder-buffer capacity (Table 1: 128).
    pub rob_size: usize,
    /// Load-buffer capacity (Table 1: 48).
    pub load_buffers: usize,
    /// Store-buffer capacity (Table 1: 32).
    pub store_buffers: usize,
    /// Integer scheduling-window size (Table 1: 48).
    pub sched_int: usize,
    /// Memory scheduling-window size (Table 1: 24).
    pub sched_mem: usize,
    /// FP scheduling-window size (Table 1: 56).
    pub sched_fp: usize,
    /// Integer execution units (Table 1: 3).
    pub units_int: u32,
    /// Memory execution units (Table 1: 2).
    pub units_mem: u32,
    /// FP execution units (Table 1: 1).
    pub units_fp: u32,
    /// Pipeline gating; `None` disables gating entirely.
    pub gating: Option<GatingConfig>,
    /// Memory hierarchy.
    pub mem: MemHierarchyConfig,
    /// When `Some((lo, hi, bin))`, collect the estimator-output density
    /// histograms of Figures 4–7 over that range at retirement.
    pub density: Option<(i64, i64, u32)>,
}

/// Back-end stages (issue, execute, writeback, retire and redirect
/// overhead) assumed when translating the paper's "N-cycle pipeline"
/// into a front-end depth.
pub const BACKEND_STAGES: u32 = 6;

impl PipelineConfig {
    /// Builds a configuration for the paper's "`depth`-cycle,
    /// `width`-wide" pipeline with Table 1 resources.
    ///
    /// # Panics
    ///
    /// Panics if `depth <= BACKEND_STAGES` or `width == 0`.
    #[must_use]
    pub fn with_depth_width(depth: u32, width: u32) -> Self {
        assert!(
            depth > BACKEND_STAGES,
            "pipeline depth must exceed the back-end stage count"
        );
        assert!(width > 0, "width must be positive");
        Self {
            width,
            frontend_depth: depth - BACKEND_STAGES,
            rob_size: 128,
            load_buffers: 48,
            store_buffers: 32,
            sched_int: 48,
            sched_mem: 24,
            sched_fp: 56,
            units_int: 3,
            units_mem: 2,
            units_fp: 1,
            gating: None,
            mem: MemHierarchyConfig::default(),
            density: None,
        }
    }

    /// The paper's deep baseline: 40-cycle, 4-wide (most results).
    #[must_use]
    pub fn deep() -> Self {
        Self::with_depth_width(40, 4)
    }

    /// The paper's wide machine: 20-cycle, 8-wide (§5.5, Figure 9).
    #[must_use]
    pub fn wide() -> Self {
        Self::with_depth_width(20, 8)
    }

    /// The paper's shallow reference: 20-cycle, 4-wide (Table 2).
    #[must_use]
    pub fn shallow() -> Self {
        Self::with_depth_width(20, 4)
    }

    /// Enables gating with the given `PLn` counter threshold.
    #[must_use]
    pub fn gated(mut self, counter_threshold: u32) -> Self {
        self.gating = Some(GatingConfig {
            counter_threshold,
            ce_latency: 1,
        });
        self
    }

    /// Sets the confidence-estimator latency (requires gating enabled).
    #[must_use]
    pub fn with_ce_latency(mut self, ce_latency: u32) -> Self {
        if let Some(g) = &mut self.gating {
            g.ce_latency = ce_latency;
        }
        self
    }

    /// Enables density collection over `[lo, hi)` with `bin`-wide bins.
    #[must_use]
    pub fn with_density(mut self, lo: i64, hi: i64, bin: u32) -> Self {
        self.density = Some((lo, hi, bin));
        self
    }

    /// Front-end pipe capacity in uops.
    #[must_use]
    pub fn frontend_capacity(&self) -> usize {
        (self.frontend_depth * self.width) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_shapes() {
        assert_eq!(PipelineConfig::deep().width, 4);
        assert_eq!(PipelineConfig::deep().frontend_depth, 34);
        assert_eq!(PipelineConfig::wide().width, 8);
        assert_eq!(PipelineConfig::wide().frontend_depth, 14);
        assert_eq!(PipelineConfig::shallow().frontend_depth, 14);
    }

    #[test]
    fn table1_resources() {
        let c = PipelineConfig::deep();
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.load_buffers, 48);
        assert_eq!(c.store_buffers, 32);
        assert_eq!((c.units_int, c.units_mem, c.units_fp), (3, 2, 1));
    }

    #[test]
    fn gated_builder_sets_threshold() {
        let c = PipelineConfig::deep().gated(2).with_ce_latency(9);
        let g = c.gating.unwrap();
        assert_eq!(g.counter_threshold, 2);
        assert_eq!(g.ce_latency, 9);
    }

    #[test]
    fn ce_latency_without_gating_is_noop() {
        let c = PipelineConfig::deep().with_ce_latency(9);
        assert!(c.gating.is_none());
    }

    #[test]
    fn frontend_capacity() {
        assert_eq!(PipelineConfig::deep().frontend_capacity(), 34 * 4);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn too_shallow_panics() {
        let _ = PipelineConfig::with_depth_width(6, 4);
    }
}
