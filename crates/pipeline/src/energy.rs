use crate::stats::SimStats;
use serde::{Deserialize, Serialize};

/// Per-event energy weights, in arbitrary energy units per uop (or per
/// cycle for the static term).
///
/// Pipeline gating is an *energy* technique: the paper's motivation is
/// that wrong-path work "causes a lot more instructions to be executed
/// than necessary". This model converts [`SimStats`] counters into the
/// front-end / execute / static decomposition used by the pipeline
/// gating literature (Manne et al.), so gating configurations can be
/// compared on energy and energy×delay rather than uop counts alone.
///
/// The default weights follow the usual coarse split for a P4-class
/// core: roughly half of dynamic per-uop energy is spent before
/// execute (fetch/decode/rename/trace-cache), and leakage plus clock
/// distribution contribute a per-cycle term comparable to ~2 uops'
/// front-end energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per uop fetched (fetch + decode + rename + allocate).
    pub frontend_per_uop: f64,
    /// Energy per uop issued to a functional unit (schedule + execute
    /// + writeback).
    pub execute_per_uop: f64,
    /// Energy per uop retired (commit bookkeeping).
    pub retire_per_uop: f64,
    /// Static/clock energy per cycle.
    pub static_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            frontend_per_uop: 1.0,
            execute_per_uop: 1.0,
            retire_per_uop: 0.25,
            static_per_cycle: 2.0,
        }
    }
}

/// Energy totals derived from one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Total energy of the run (arbitrary units).
    pub total: f64,
    /// Energy attributable to wrong-path work (fetched + executed
    /// wrong-path uops) — what gating exists to remove.
    pub wasted: f64,
    /// Energy × delay product (total × cycles), for configurations
    /// that trade performance for energy.
    pub energy_delay: f64,
}

impl EnergyBreakdown {
    /// Fraction of total energy that was wasted on the wrong path.
    #[must_use]
    pub fn wasted_frac(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.wasted / self.total
        }
    }
}

impl EnergyModel {
    /// Evaluates the model over a run's statistics.
    #[must_use]
    pub fn evaluate(&self, stats: &SimStats) -> EnergyBreakdown {
        let fetched = (stats.fetched_correct + stats.fetched_wrong) as f64;
        let total = fetched * self.frontend_per_uop
            + stats.executed_total() as f64 * self.execute_per_uop
            + stats.retired as f64 * self.retire_per_uop
            + stats.cycles as f64 * self.static_per_cycle;
        let wasted = stats.fetched_wrong as f64 * self.frontend_per_uop
            + stats.executed_wrong as f64 * self.execute_per_uop;
        EnergyBreakdown {
            total,
            wasted,
            energy_delay: total * stats.cycles as f64,
        }
    }

    /// Relative energy change from `base` to `variant` (negative =
    /// variant saves energy), and the same for energy-delay.
    #[must_use]
    pub fn compare(&self, base: &SimStats, variant: &SimStats) -> (f64, f64) {
        let b = self.evaluate(base);
        let v = self.evaluate(variant);
        (
            v.total / b.total - 1.0,
            v.energy_delay / b.energy_delay - 1.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(fc: u64, fw: u64, ec: u64, ew: u64, retired: u64, cycles: u64) -> SimStats {
        SimStats {
            fetched_correct: fc,
            fetched_wrong: fw,
            executed_correct: ec,
            executed_wrong: ew,
            retired,
            cycles,
            ..SimStats::default()
        }
    }

    #[test]
    fn totals_decompose() {
        let m = EnergyModel::default();
        let s = stats(1000, 500, 900, 300, 900, 1000);
        let e = m.evaluate(&s);
        let expect = 1500.0 * 1.0 + 1200.0 * 1.0 + 900.0 * 0.25 + 1000.0 * 2.0;
        assert!((e.total - expect).abs() < 1e-9);
        assert!((e.wasted - (500.0 + 300.0)).abs() < 1e-9);
        assert!(e.wasted_frac() > 0.0 && e.wasted_frac() < 1.0);
    }

    #[test]
    fn no_wrong_path_means_no_waste() {
        let m = EnergyModel::default();
        let e = m.evaluate(&stats(1000, 0, 1000, 0, 1000, 500));
        assert_eq!(e.wasted, 0.0);
        assert_eq!(e.wasted_frac(), 0.0);
    }

    #[test]
    fn gating_that_cuts_wrong_path_saves_energy() {
        let m = EnergyModel::default();
        let base = stats(1000, 800, 900, 200, 900, 1000);
        let gated = stats(1000, 300, 900, 80, 900, 1030);
        let (de, dedp) = m.compare(&base, &gated);
        assert!(de < 0.0, "energy delta {de}");
        // Energy-delay includes the 3% slowdown but the saving wins.
        assert!(dedp < 0.0, "energy-delay delta {dedp}");
    }

    #[test]
    fn energy_delay_punishes_slowdowns() {
        let m = EnergyModel::default();
        let base = stats(1000, 100, 900, 50, 900, 1000);
        let slow = stats(1000, 90, 900, 45, 900, 1500);
        let (_, dedp) = m.compare(&base, &slow);
        assert!(dedp > 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let m = EnergyModel::default();
        let e = m.evaluate(&SimStats::default());
        assert_eq!(e.total, 0.0);
        assert_eq!(e.wasted_frac(), 0.0);
    }
}
