use perconf_metrics::{ConfusionMatrix, DensityPair};
use serde::{Deserialize, Serialize};

/// Everything the simulator measures in one run.
///
/// Counter conventions:
/// * *fetched* — entered the front-end pipe;
/// * *executed* — issued to a functional unit (the quantity pipeline
///   gating is designed to reduce for the wrong path);
/// * *retired* — left the ROB architecturally (correct path only).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Correct-path uops fetched.
    pub fetched_correct: u64,
    /// Wrong-path uops fetched.
    pub fetched_wrong: u64,
    /// Correct-path uops executed.
    pub executed_correct: u64,
    /// Wrong-path uops executed.
    pub executed_wrong: u64,
    /// Uops retired.
    pub retired: u64,
    /// Conditional branches retired.
    pub branches_retired: u64,
    /// Retired branches whose *base* prediction was wrong.
    pub base_mispredicts: u64,
    /// Retired branches whose *speculated* (post-reversal) direction
    /// was wrong.
    pub speculated_mispredicts: u64,
    /// Retired branches whose prediction was reversed.
    pub reversals: u64,
    /// Reversals that corrected a misprediction.
    pub reversals_good: u64,
    /// Reversals that broke a correct prediction.
    pub reversals_bad: u64,
    /// Cycles fetch was stalled by the gate.
    pub gated_cycles: u64,
    /// Cycles fetch was stalled refilling after a squash redirect.
    pub redirect_cycles: u64,
    /// Uops squashed on mispredict recovery.
    pub squashed: u64,
    /// Pipeline squash events (resolved mispredicted speculation).
    pub squashes: u64,
    /// Cycles retirement made no progress because the ROB was empty
    /// (front-end refill / gating).
    pub stall_empty: u64,
    /// Cycles the ROB head was waiting for its source operands.
    pub stall_deps: u64,
    /// Cycles the ROB head was ready but not yet issued (FU or
    /// scheduler contention).
    pub stall_fu: u64,
    /// Cycles the ROB head was an in-flight load.
    pub stall_load: u64,
    /// Cycles the ROB head was any other in-flight uop.
    pub stall_exec: u64,
    /// Sum of ROB occupancy over cycles (divide by `cycles` for mean).
    pub rob_occupancy_sum: u64,
    /// Sum over squashes of (resolve cycle − fetch cycle) of the
    /// triggering branch.
    pub resolution_delay_sum: u64,
    /// PVN/Spec quadrants over retired branches (base prediction vs
    /// binary low/high confidence).
    pub confusion: ConfusionMatrix,
    /// Estimator-output density over retired branches, when enabled.
    pub density: Option<DensityPair>,
}

impl SimStats {
    /// Retired uops per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Total uops executed (correct + wrong path) — the paper's
    /// "total uops executed".
    #[must_use]
    pub fn executed_total(&self) -> u64 {
        self.executed_correct + self.executed_wrong
    }

    /// Percentage increase in uops executed due to branch
    /// mispredictions (Table 2's right-hand columns), as a fraction.
    #[must_use]
    pub fn wasted_execution_frac(&self) -> f64 {
        if self.executed_correct == 0 {
            0.0
        } else {
            self.executed_wrong as f64 / self.executed_correct as f64
        }
    }

    /// Branch mispredicts per 1000 retired uops (Table 2, column 1),
    /// measured on the base predictor.
    #[must_use]
    pub fn mpku(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.base_mispredicts as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Base-predictor misprediction rate per branch.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches_retired == 0 {
            0.0
        } else {
            self.base_mispredicts as f64 / self.branches_retired as f64
        }
    }

    /// Resets all counters (used after warm-up). The simulator
    /// recreates the density pair afterwards if collection is enabled.
    pub fn reset(&mut self) {
        *self = SimStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_waste() {
        let s = SimStats {
            cycles: 100,
            retired: 150,
            executed_correct: 150,
            executed_wrong: 75,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.wasted_execution_frac() - 0.5).abs() < 1e-12);
        assert_eq!(s.executed_total(), 225);
    }

    #[test]
    fn mpku() {
        let s = SimStats {
            retired: 10_000,
            branches_retired: 1500,
            base_mispredicts: 52,
            ..SimStats::default()
        };
        assert!((s.mpku() - 5.2).abs() < 1e-12);
        assert!((s.mispredict_rate() - 52.0 / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.wasted_execution_frac(), 0.0);
        assert_eq!(s.mpku(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut s = SimStats {
            cycles: 5,
            retired: 5,
            ..SimStats::default()
        };
        s.reset();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.retired, 0);
    }
}
