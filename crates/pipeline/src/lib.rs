//! Cycle-level, trace-driven out-of-order superscalar pipeline
//! simulator — the execution substrate of the HPCA 2004 reproduction.
//!
//! The paper evaluates pipeline gating and branch reversal on a
//! cycle-accurate IA32 uop simulator modelled on the Pentium 4
//! (Table 1). This crate implements an equivalent from-scratch
//! simulator over the synthetic uop traces of `perconf-workload`:
//!
//! * a front-end pipe of configurable depth and width, with a branch
//!   predictor + confidence estimator (`perconf-core`'s
//!   [`SpeculationController`](perconf_core::SpeculationController)) in
//!   the fetch stage;
//! * **wrong-path modelling**: after a branch whose *speculated*
//!   direction is wrong is fetched, the front end keeps fetching
//!   synthesised wrong-path uops that occupy real resources and
//!   execute until the branch resolves, at which point everything
//!   younger is squashed and fetch redirects (paying the full
//!   front-end refill);
//! * out-of-order issue over int/mem/fp schedulers and functional
//!   units, a ROB, and load/store buffers (Table 1 sizes);
//! * an L1D/L2/memory hierarchy with a stream prefetcher;
//! * **pipeline gating**: a low-confidence branch counter gates fetch
//!   while `count >= threshold` (paper Figure 1), with configurable
//!   estimator latency (§5.4.2);
//! * **branch reversal**: strongly-low-confidence predictions are
//!   inverted at fetch (§5.5).
//!
//! [`Simulation::run`] retires a requested number of correct-path uops
//! and produces [`SimStats`]: fetched/executed/retired uop counts split
//! by path, cycles, gated cycles, misprediction and reversal counts,
//! the PVN/Spec confusion quadrants, and (optionally) the perceptron
//! output densities of Figures 4–7.
//!
//! # Examples
//!
//! ```
//! use perconf_bpred::baseline_bimodal_gshare;
//! use perconf_core::{AlwaysHigh, SpeculationController};
//! use perconf_pipeline::{PipelineConfig, Simulation};
//! use perconf_workload::spec2000_config;
//!
//! let wl = spec2000_config("gcc").unwrap();
//! let ctl = SpeculationController::new(
//!     Box::new(baseline_bimodal_gshare()) as Box<dyn perconf_bpred::SimPredictor>,
//!     Box::new(AlwaysHigh) as Box<dyn perconf_core::SimEstimator>,
//! );
//! let mut sim = Simulation::new(PipelineConfig::with_depth_width(20, 4), &wl, ctl);
//! let stats = sim.run(20_000);
//! assert!(stats.ipc() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
mod config;
mod energy;
mod sim;
mod smt;
mod stats;

pub use batch::BatchSim;
pub use cache::{Cache, CacheConfig, MemHierarchy, MemHierarchyConfig, StreamPrefetcher};
pub use config::{GatingConfig, PipelineConfig};
pub use energy::{EnergyBreakdown, EnergyModel};
/// The observability layer (counters, tracer, profiler), re-exported
/// so downstream crates can name its types without a separate
/// dependency edge.
pub use perconf_obs as obs;
pub use sim::{Controller, SimError, Simulation};
pub use smt::{FetchPolicy, SmtSimulation};
pub use stats::SimStats;
