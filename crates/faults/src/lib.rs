//! Deterministic, seeded fault injection for resilience studies.
//!
//! Confidence estimators guard speculation decisions, so it matters
//! how gracefully they (and the predictors they watch) degrade when
//! their SRAM state takes single-event upsets. This crate provides the
//! machinery to ask that question reproducibly:
//!
//! * [`FaultPlan`] — a seeded schedule of single-bit faults: the same
//!   [`FaultConfig`] always replays the same (access, bit) sequence;
//! * [`FaultyPredictor`] / [`FaultyEstimator`] — transparent adapters
//!   that flip bits in any [`FaultableState`](perconf_bpred::FaultableState)
//!   structure (perceptron weights, saturating counters, history
//!   registers) at a configurable per-access rate, plus optional
//!   transient corruption of the in-flight global history;
//! * [`CorruptingReader`] — record-level data rot for
//!   [`TraceReader`](perconf_workload::TraceReader) streams.
//!
//! Zero-rate wrappers are bit-identical passthroughs, so a resilience
//! sweep's baseline point is exactly the unwrapped system.
//!
//! # Examples
//!
//! ```
//! use perconf_bpred::{baseline_bimodal_gshare, BranchPredictor};
//! use perconf_faults::{FaultConfig, FaultyPredictor};
//!
//! let cfg = FaultConfig::state_only(1e-3, 42);
//! let mut p = FaultyPredictor::new(baseline_bimodal_gshare(), &cfg);
//! let mut hist = 0u64;
//! for i in 0..10_000u64 {
//!     let pc = 0x40 + (i % 64) * 4;
//!     let taken = i % 3 != 0;
//!     let _ = p.predict(pc, hist);
//!     p.train(pc, hist, taken);
//!     hist = (hist << 1) | u64::from(taken);
//! }
//! assert!(p.injected() > 0); // ~20 faults over 20k accesses
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corrupt;
mod plan;
pub mod process;
mod wrap;

pub use corrupt::{corrupt_uop, CorruptingReader};
pub use plan::{FaultConfig, FaultPlan};
pub use process::{ChaosAction, ChaosConfig, ChaosPlan};
pub use wrap::{FaultyEstimator, FaultyPredictor};
