use std::io;

use perconf_workload::Uop;

use crate::plan::{FaultConfig, FaultPlan};

/// Bit width of the record-corruption address space (see
/// [`corrupt_uop`]).
const RECORD_FAULT_BITS: u64 = 193;

/// Flips one bit of a decoded trace record's payload, addressed in a
/// stable field-level space modelled on the on-disk record layout:
///
/// | bits      | field                                     |
/// |-----------|-------------------------------------------|
/// | 0..32     | `src1`                                    |
/// | 32..64    | `src2`                                    |
/// | 64..128   | `mem.addr` (no-op when the uop has no mem) |
/// | 128..192  | `branch.pc` (no-op when not a branch)      |
/// | 192       | `branch.taken` (no-op when not a branch)   |
///
/// Faults landing in an absent field are dropped, like strikes on the
/// unused bytes of a fixed-width record. The uop's `kind` is never
/// touched, so a corrupted record is always structurally valid — it
/// carries wrong *data*, not an undecodable encoding (the reader's
/// checksum path covers that failure mode separately).
///
/// Returns `true` if a bit actually changed.
pub fn corrupt_uop(u: &mut Uop, bit: u64) -> bool {
    let bit = bit % RECORD_FAULT_BITS;
    match bit {
        0..=31 => {
            u.src1 ^= 1 << bit;
            true
        }
        32..=63 => {
            u.src2 ^= 1 << (bit - 32);
            true
        }
        64..=127 => match &mut u.mem {
            Some(m) => {
                m.addr ^= 1 << (bit - 64);
                true
            }
            None => false,
        },
        128..=191 => match &mut u.branch {
            Some(b) => {
                b.pc ^= 1 << (bit - 128);
                true
            }
            None => false,
        },
        _ => match &mut u.branch {
            Some(b) => {
                b.taken = !b.taken;
                true
            }
            None => false,
        },
    }
}

/// Wraps any stream of trace records (for instance a
/// [`TraceReader`](perconf_workload::TraceReader)) and injects seeded
/// record-level corruption: with the plan's per-access probability a
/// record is yielded with one payload bit flipped, per [`corrupt_uop`].
///
/// I/O errors from the underlying stream pass through untouched; the
/// corruptor only ever damages successfully decoded records, modelling
/// data rot that the record checksum did not catch.
#[derive(Debug)]
pub struct CorruptingReader<I> {
    inner: I,
    plan: FaultPlan,
    corrupted: u64,
}

impl<I> CorruptingReader<I> {
    /// Wraps `inner` under the fault campaign `cfg` (`history_rate` is
    /// ignored here; only `rate`/`seed` apply).
    #[must_use]
    pub fn new(inner: I, cfg: &FaultConfig) -> Self {
        Self {
            inner,
            plan: FaultPlan::new(cfg),
            corrupted: 0,
        }
    }

    /// Number of records actually corrupted (faults that landed in an
    /// absent field are not counted).
    #[must_use]
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Number of records that have passed through.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.plan.accesses()
    }

    /// Unwraps the underlying stream.
    #[must_use]
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: Iterator<Item = io::Result<Uop>>> Iterator for CorruptingReader<I> {
    type Item = io::Result<Uop>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        Some(item.map(|mut u| {
            if let Some(bit) = self.plan.next_fault(RECORD_FAULT_BITS) {
                if corrupt_uop(&mut u, bit) {
                    self.corrupted += 1;
                }
            }
            u
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perconf_workload::{TraceReader, TraceWriter, UopKind};
    use std::io::Cursor;

    fn sample_trace() -> Vec<u8> {
        let mut buf = Cursor::new(Vec::new());
        {
            let mut w = TraceWriter::new(&mut buf).unwrap();
            for i in 0..200u64 {
                w.write_uop(&Uop::branch(0x40 + i * 4, i as u32, i % 3 == 0, 1))
                    .unwrap();
                w.write_uop(&Uop::mem(UopKind::Load, 0x1000 + i * 8, 2))
                    .unwrap();
                w.write_uop(&Uop::alu(UopKind::IntAlu, 1, 2)).unwrap();
            }
            w.finish().unwrap();
        }
        buf.into_inner()
    }

    fn read_all(bytes: &[u8], cfg: &FaultConfig) -> Vec<Uop> {
        let reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        CorruptingReader::new(reader, cfg)
            .map(|r| r.unwrap())
            .collect()
    }

    #[test]
    fn zero_rate_is_bit_identical_passthrough() {
        let bytes = sample_trace();
        let clean: Vec<Uop> = TraceReader::new(Cursor::new(&bytes[..]))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let piped = read_all(&bytes, &FaultConfig::none());
        assert_eq!(clean, piped);
    }

    #[test]
    fn same_seed_corrupts_identically() {
        let bytes = sample_trace();
        let cfg = FaultConfig::state_only(0.2, 77);
        let a = read_all(&bytes, &cfg);
        let b = read_all(&bytes, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn corruption_changes_some_records_and_counts_them() {
        let bytes = sample_trace();
        let clean: Vec<Uop> = TraceReader::new(Cursor::new(&bytes[..]))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let cfg = FaultConfig::state_only(0.5, 3);
        let reader = TraceReader::new(Cursor::new(&bytes[..])).unwrap();
        let mut cr = CorruptingReader::new(reader, &cfg);
        let dirty: Vec<Uop> = cr.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(cr.records(), clean.len() as u64);
        let differing = clean.iter().zip(&dirty).filter(|(a, b)| a != b).count();
        assert_eq!(differing as u64, cr.corrupted());
        assert!(cr.corrupted() > 0);
    }

    #[test]
    fn corrupted_records_stay_structurally_valid() {
        let bytes = sample_trace();
        for u in read_all(&bytes, &FaultConfig::state_only(1.0, 9)) {
            assert_eq!(u.branch.is_some(), u.kind == UopKind::Branch);
            assert_eq!(u.mem.is_some(), u.kind.is_mem());
        }
    }

    #[test]
    fn corrupt_uop_field_map_is_stable() {
        let mut b = Uop::branch(0x40, 1, true, 3);
        assert!(corrupt_uop(&mut b, 192));
        assert!(!b.branch.unwrap().taken);
        assert!(corrupt_uop(&mut b, 128));
        assert_eq!(b.branch.unwrap().pc, 0x41);
        assert!(corrupt_uop(&mut b, 0));
        assert_eq!(b.src1, 2);
        // Memory faults miss a branch uop entirely.
        assert!(!corrupt_uop(&mut b, 64));

        let mut l = Uop::mem(UopKind::Load, 0x1000, 1);
        assert!(corrupt_uop(&mut l, 64));
        assert_eq!(l.mem.unwrap().addr, 0x1001);
        // Branch faults miss a load.
        assert!(!corrupt_uop(&mut l, 130));
        assert!(!corrupt_uop(&mut l, 192));
    }

    #[test]
    fn addresses_wrap_modulo_record_space() {
        let mut a = Uop::alu(UopKind::IntAlu, 0, 0);
        let mut b = Uop::alu(UopKind::IntAlu, 0, 0);
        corrupt_uop(&mut a, 5);
        corrupt_uop(&mut b, 5 + RECORD_FAULT_BITS);
        assert_eq!(a, b);
    }

    #[test]
    fn io_errors_pass_through() {
        let items: Vec<io::Result<Uop>> = vec![
            Ok(Uop::alu(UopKind::IntAlu, 0, 0)),
            Err(io::Error::new(io::ErrorKind::InvalidData, "bad record")),
        ];
        let mut cr = CorruptingReader::new(items.into_iter(), &FaultConfig::state_only(1.0, 1));
        assert!(cr.next().unwrap().is_ok());
        assert!(cr.next().unwrap().is_err());
        assert!(cr.next().is_none());
    }
}
