use std::cell::RefCell;

use perconf_bpred::{BranchPredictor, FaultableState, Snapshot, SnapshotError, StateDigest};
use perconf_core::{ConfidenceEstimator, Estimate, EstimateCtx};
use serde::Value;

use crate::plan::{FaultConfig, FaultPlan};

/// Pulls a named component out of a two-field wrapper snapshot.
fn component<'v>(state: &'v Value, name: &str) -> Result<&'v Value, SnapshotError> {
    if let Value::Object(fields) = state {
        if let Some((_, v)) = fields.iter().find(|(k, _)| k == name) {
            return Ok(v);
        }
    }
    Err(SnapshotError::msg(format!(
        "fault-wrapper snapshot missing `{name}`"
    )))
}

/// A [`BranchPredictor`] adapter that injects seeded single-bit faults
/// into the wrapped predictor's state.
///
/// Every `predict` and every `train` counts as one access against the
/// plan's per-access rate; a firing access flips one uniformly chosen
/// bit of the wrapped structure *before* the operation runs, so the
/// operation observes (and trains on) the corrupted state — the way a
/// real SRAM upset would be consumed. Lookups additionally pass the
/// in-flight history through the plan's transient-history process.
///
/// `predict` takes `&self`, so both the plan and the wrapped predictor
/// live behind [`RefCell`]s; the adapter is consequently `!Sync`, like
/// any single-threaded simulator component.
///
/// With [`FaultConfig::none`] the adapter is a bit-identical
/// passthrough: no RNG draws, no state perturbation.
#[derive(Debug)]
pub struct FaultyPredictor<P> {
    inner: RefCell<P>,
    plan: RefCell<FaultPlan>,
}

impl<P: BranchPredictor + FaultableState> FaultyPredictor<P> {
    /// Wraps `inner` under the fault campaign `cfg`.
    #[must_use]
    pub fn new(inner: P, cfg: &FaultConfig) -> Self {
        Self {
            inner: RefCell::new(inner),
            plan: RefCell::new(FaultPlan::new(cfg)),
        }
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.plan.borrow().injected()
    }

    /// Number of accesses (predicts + trains) the plan has counted.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.plan.borrow().accesses()
    }

    /// Unwraps the (possibly corrupted) predictor.
    #[must_use]
    pub fn into_inner(self) -> P {
        self.inner.into_inner()
    }

    fn inject(&self, p: &mut P) {
        if let Some(bit) = self.plan.borrow_mut().next_fault(p.state_bits()) {
            p.flip_state_bit(bit);
        }
    }
}

impl<P: BranchPredictor + FaultableState> BranchPredictor for FaultyPredictor<P> {
    fn predict(&self, pc: u64, hist: u64) -> bool {
        let mut p = self.inner.borrow_mut();
        self.inject(&mut p);
        let hist = self.plan.borrow_mut().corrupt_history(hist);
        p.predict(pc, hist)
    }

    fn train(&mut self, pc: u64, hist: u64, taken: bool) {
        let p = self.inner.get_mut();
        if let Some(bit) = self.plan.get_mut().next_fault(p.state_bits()) {
            p.flip_state_bit(bit);
        }
        p.train(pc, hist, taken);
    }

    fn name(&self) -> &'static str {
        self.inner.borrow().name()
    }

    fn storage_bits(&self) -> u64 {
        self.inner.borrow().storage_bits()
    }
}

impl<P: BranchPredictor + FaultableState> FaultableState for FaultyPredictor<P> {
    fn state_bits(&self) -> u64 {
        self.inner.borrow().state_bits()
    }

    fn flip_state_bit(&mut self, bit: u64) {
        self.inner.get_mut().flip_state_bit(bit);
    }
}

impl<P: Snapshot> Snapshot for FaultyPredictor<P> {
    fn save_state(&self) -> Value {
        Value::Object(vec![
            ("inner".into(), self.inner.borrow().save_state()),
            ("plan".into(), self.plan.borrow().save_state()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        self.inner
            .get_mut()
            .restore_state(component(state, "inner")?)?;
        self.plan.get_mut().restore_state(component(state, "plan")?)
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(self.inner.borrow().state_digest())
            .word(self.plan.borrow().state_digest());
        d.finish()
    }
}

/// A [`ConfidenceEstimator`] adapter mirroring [`FaultyPredictor`]:
/// seeded single-bit upsets in the estimator's state (perceptron
/// weights, miss-distance counters, local histories), plus transient
/// corruption of the history snapshot seen at estimate time.
#[derive(Debug)]
pub struct FaultyEstimator<E> {
    inner: RefCell<E>,
    plan: RefCell<FaultPlan>,
}

impl<E: ConfidenceEstimator + FaultableState> FaultyEstimator<E> {
    /// Wraps `inner` under the fault campaign `cfg`.
    #[must_use]
    pub fn new(inner: E, cfg: &FaultConfig) -> Self {
        Self {
            inner: RefCell::new(inner),
            plan: RefCell::new(FaultPlan::new(cfg)),
        }
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.plan.borrow().injected()
    }

    /// Number of accesses (estimates + trains) the plan has counted.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.plan.borrow().accesses()
    }

    /// Unwraps the (possibly corrupted) estimator.
    #[must_use]
    pub fn into_inner(self) -> E {
        self.inner.into_inner()
    }
}

impl<E: ConfidenceEstimator + FaultableState> ConfidenceEstimator for FaultyEstimator<E> {
    fn estimate(&self, ctx: &EstimateCtx) -> Estimate {
        let mut e = self.inner.borrow_mut();
        if let Some(bit) = self.plan.borrow_mut().next_fault(e.state_bits()) {
            e.flip_state_bit(bit);
        }
        let faulted = EstimateCtx {
            history: self.plan.borrow_mut().corrupt_history(ctx.history),
            ..*ctx
        };
        e.estimate(&faulted)
    }

    fn train(&mut self, ctx: &EstimateCtx, est: Estimate, mispredicted: bool) {
        let e = self.inner.get_mut();
        if let Some(bit) = self.plan.get_mut().next_fault(e.state_bits()) {
            e.flip_state_bit(bit);
        }
        e.train(ctx, est, mispredicted);
    }

    fn name(&self) -> &'static str {
        self.inner.borrow().name()
    }

    fn storage_bits(&self) -> u64 {
        self.inner.borrow().storage_bits()
    }
}

impl<E: ConfidenceEstimator + FaultableState> FaultableState for FaultyEstimator<E> {
    fn state_bits(&self) -> u64 {
        self.inner.borrow().state_bits()
    }

    fn flip_state_bit(&mut self, bit: u64) {
        self.inner.get_mut().flip_state_bit(bit);
    }
}

impl<E: Snapshot> Snapshot for FaultyEstimator<E> {
    fn save_state(&self) -> Value {
        Value::Object(vec![
            ("inner".into(), self.inner.borrow().save_state()),
            ("plan".into(), self.plan.borrow().save_state()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        self.inner
            .get_mut()
            .restore_state(component(state, "inner")?)?;
        self.plan.get_mut().restore_state(component(state, "plan")?)
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.word(self.inner.borrow().state_digest())
            .word(self.plan.borrow().state_digest());
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perconf_bpred::{baseline_bimodal_gshare, Bimodal};
    use perconf_core::{JrsConfig, JrsEstimator, PerceptronCe, PerceptronCeConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// Drives `reference` and `faulty` through the same deterministic
    /// branch stream and returns how many predictions differed.
    fn diff_count(
        reference: &mut dyn BranchPredictor,
        faulty: &mut dyn BranchPredictor,
        branches: u64,
    ) -> u64 {
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        let mut hist = 0u64;
        let mut diffs = 0u64;
        for _ in 0..branches {
            let pc = u64::from(rng.gen_range(0u32..512)) << 2;
            // Mostly-biased outcome with some noise, like real branches.
            let taken = (pc & 4 == 0) ^ rng.gen_bool(0.1);
            if reference.predict(pc, hist) != faulty.predict(pc, hist) {
                diffs += 1;
            }
            reference.train(pc, hist, taken);
            faulty.train(pc, hist, taken);
            hist = (hist << 1) | u64::from(taken);
        }
        diffs
    }

    #[test]
    fn zero_rate_predictor_is_bit_identical_over_100k_branches() {
        let mut reference = baseline_bimodal_gshare();
        let mut faulty = FaultyPredictor::new(baseline_bimodal_gshare(), &FaultConfig::none());
        assert_eq!(diff_count(&mut reference, &mut faulty, 100_000), 0);
        assert_eq!(faulty.injected(), 0);
    }

    #[test]
    fn nonzero_rate_perturbs_predictions() {
        let mut reference = Bimodal::new(9);
        let cfg = FaultConfig::state_only(0.02, 42);
        let mut faulty = FaultyPredictor::new(Bimodal::new(9), &cfg);
        assert!(diff_count(&mut reference, &mut faulty, 20_000) > 0);
        assert!(faulty.injected() > 0);
    }

    #[test]
    fn same_seed_gives_identical_faulty_runs() {
        let cfg = FaultConfig::state_only(0.01, 0xFA);
        let mut a = FaultyPredictor::new(Bimodal::new(9), &cfg);
        let mut b = FaultyPredictor::new(Bimodal::new(9), &cfg);
        assert_eq!(diff_count(&mut a, &mut b, 50_000), 0);
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0);
    }

    #[test]
    fn zero_rate_estimator_is_bit_identical_over_100k_branches() {
        let mut reference = PerceptronCe::new(PerceptronCeConfig::default());
        let mut faulty = FaultyEstimator::new(
            PerceptronCe::new(PerceptronCeConfig::default()),
            &FaultConfig::none(),
        );
        let mut rng = SmallRng::seed_from_u64(0xE57);
        let mut hist = 0u64;
        for _ in 0..100_000u32 {
            let ctx = EstimateCtx {
                pc: u64::from(rng.gen_range(0u32..512)) << 2,
                history: hist,
                predicted_taken: rng.gen_bool(0.5),
            };
            let er = reference.estimate(&ctx);
            let ef = faulty.estimate(&ctx);
            assert_eq!(er.raw, ef.raw);
            assert_eq!(er.class, ef.class);
            let miss = rng.gen_bool(0.08);
            reference.train(&ctx, er, miss);
            faulty.train(&ctx, ef, miss);
            hist = (hist << 1) | u64::from(ctx.predicted_taken != miss);
        }
        assert_eq!(faulty.injected(), 0);
        assert_eq!(faulty.accesses(), 200_000);
    }

    #[test]
    fn faulted_estimator_diverges_from_reference() {
        let reference = JrsEstimator::new(JrsConfig::default());
        let cfg = FaultConfig::state_only(1.0, 1);
        let faulty = FaultyEstimator::new(JrsEstimator::new(JrsConfig::default()), &cfg);
        let mut diffs = 0u32;
        for pc in (0..4096u64).step_by(4) {
            let ctx = EstimateCtx {
                pc,
                history: 0,
                predicted_taken: true,
            };
            if reference.estimate(&ctx).raw != faulty.estimate(&ctx).raw {
                diffs += 1;
            }
        }
        assert!(diffs > 0);
        assert_eq!(faulty.injected(), 1024);
    }

    #[test]
    fn wrappers_compose_as_trait_objects() {
        let cfg = FaultConfig::state_only(0.5, 9);
        let boxed: Box<dyn perconf_bpred::FaultablePredictor> = Box::new(baseline_bimodal_gshare());
        let faulty = FaultyPredictor::new(boxed, &cfg);
        let as_predictor: Box<dyn BranchPredictor> = Box::new(faulty);
        let _ = as_predictor.predict(0x40, 0);
        assert!(as_predictor.storage_bits() > 0);
    }

    #[test]
    fn snapshot_resumes_a_faulty_run_bit_identically() {
        let cfg = FaultConfig::state_only(0.01, 0xFEED);
        let mut reference = FaultyPredictor::new(Bimodal::new(9), &cfg);
        let mut rng = SmallRng::seed_from_u64(0x1234);
        let mut hist = 0u64;
        for _ in 0..20_000u32 {
            let pc = u64::from(rng.gen_range(0u32..512)) << 2;
            let taken = pc & 4 == 0;
            reference.predict(pc, hist);
            reference.train(pc, hist, taken);
            hist = (hist << 1) | u64::from(taken);
        }
        let snap = reference.save_state();

        let mut resumed = FaultyPredictor::new(Bimodal::new(9), &cfg);
        resumed.restore_state(&snap).unwrap();
        assert_eq!(resumed.state_digest(), reference.state_digest());
        assert_eq!(resumed.injected(), reference.injected());

        // Identical faults and identical predictions from here on.
        for _ in 0..20_000u32 {
            let pc = u64::from(rng.gen_range(0u32..512)) << 2;
            let taken = pc & 4 == 0;
            assert_eq!(reference.predict(pc, hist), resumed.predict(pc, hist));
            reference.train(pc, hist, taken);
            resumed.train(pc, hist, taken);
            hist = (hist << 1) | u64::from(taken);
        }
        assert_eq!(resumed.state_digest(), reference.state_digest());
    }

    #[test]
    fn estimator_snapshot_round_trips() {
        let cfg = FaultConfig::state_only(0.05, 3);
        let faulty = FaultyEstimator::new(PerceptronCe::new(PerceptronCeConfig::default()), &cfg);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut warm = FaultyEstimator::new(PerceptronCe::new(PerceptronCeConfig::default()), &cfg);
        for _ in 0..5_000u32 {
            let ctx = EstimateCtx {
                pc: u64::from(rng.gen_range(0u32..256)) << 2,
                history: rng.gen(),
                predicted_taken: rng.gen_bool(0.5),
            };
            let est = warm.estimate(&ctx);
            warm.train(&ctx, est, rng.gen_bool(0.1));
        }
        let mut restored = faulty;
        restored.restore_state(&warm.save_state()).unwrap();
        assert_eq!(restored.state_digest(), warm.state_digest());
        assert_eq!(restored.accesses(), warm.accesses());
    }

    #[test]
    fn restore_rejects_a_malformed_snapshot() {
        let mut p = FaultyPredictor::new(Bimodal::new(4), &FaultConfig::none());
        let err = p.restore_state(&serde::Value::Null).unwrap_err();
        assert!(err.to_string().contains("inner"));
    }

    #[test]
    fn name_and_storage_pass_through() {
        let p = FaultyPredictor::new(Bimodal::new(4), &FaultConfig::none());
        assert_eq!(p.name(), Bimodal::new(4).name());
        assert_eq!(p.storage_bits(), Bimodal::new(4).storage_bits());
    }
}
