//! Process-level chaos plans for distributed-sweep workers.
//!
//! The bit-flip machinery in this crate stresses the *simulated*
//! machine; a [`ChaosPlan`] stresses the machinery that runs it. A
//! distributed sweep coordinator samples a seeded plan to decide, per
//! (worker, claim) coordinate, whether that worker should die, stall
//! past its lease, or jitter — and the sweep's determinism contract
//! requires that none of it changes a single output byte.
//!
//! Like [`FaultPlan`](crate::FaultPlan), a chaos plan is a pure
//! function of its configuration: the same [`ChaosConfig`] always
//! yields the same action at the same (worker, claim) coordinate, so
//! a chaotic run is exactly reproducible and CI can pin "kill half
//! the workers mid-sweep" as a deterministic scenario rather than a
//! flaky one.
//!
//! Actions are sampled per *claim index* (the nth cell a worker
//! claims), not per wall-clock instant, so the schedule survives
//! arbitrary scheduling jitter. [`ChaosAction::KillMidCell`] is
//! defined in terms of observable progress — die once the claimed
//! cell has written its first mid-cell checkpoint — which guarantees
//! the orphaned partial state the crash-resume path exists to handle.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::fmt;

/// What a chaotic worker does at one claim point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Exit immediately after claiming the cell, before any work: the
    /// lease is orphaned with no partial checkpoint and must be
    /// reaped and recomputed from scratch.
    KillOnClaim,
    /// Exit as soon as the claimed cell writes its first mid-cell
    /// checkpoint: the lease is orphaned *with* a partial, and the
    /// next claimer must resume from it instead of recomputing.
    KillMidCell,
    /// Sleep for `ms` milliseconds after claiming, without
    /// heartbeating, before executing the cell — engineered to
    /// outlive the lease so the cell is requeued under the stalled
    /// worker's feet and its eventual completion arrives late.
    Stall {
        /// Stall length in milliseconds.
        ms: u64,
    },
    /// Sleep for `ms` milliseconds after claiming (with heartbeats),
    /// then execute normally: pure scheduling jitter.
    Delay {
        /// Delay length in milliseconds.
        ms: u64,
    },
}

impl fmt::Display for ChaosAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosAction::KillOnClaim => write!(f, "kill"),
            ChaosAction::KillMidCell => write!(f, "kill-mid-cell"),
            ChaosAction::Stall { ms } => write!(f, "stall:{ms}"),
            ChaosAction::Delay { ms } => write!(f, "delay:{ms}"),
        }
    }
}

/// Parameters of a seeded chaos campaign. Probabilities are per claim
/// index, evaluated in a fixed order (kill, kill-mid-cell, stall,
/// delay); the first that fires wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Campaign seed; the whole schedule is a pure function of it.
    pub seed: u64,
    /// Per-claim probability of [`ChaosAction::KillOnClaim`].
    pub kill: f64,
    /// Per-claim probability of [`ChaosAction::KillMidCell`].
    pub kill_mid_cell: f64,
    /// Per-claim probability of [`ChaosAction::Stall`].
    pub stall: f64,
    /// Stall length in milliseconds (should exceed the lease).
    pub stall_ms: u64,
    /// Per-claim probability of [`ChaosAction::Delay`].
    pub delay: f64,
    /// Delay length in milliseconds.
    pub delay_ms: u64,
    /// Claim indices 0..horizon are eligible for chaos; later claims
    /// run clean, which bounds the damage per worker incarnation.
    pub horizon: u64,
    /// Worker incarnations 0..incarnations receive chaos scripts;
    /// respawned incarnations at or past this run clean, so a chaotic
    /// sweep always terminates.
    pub incarnations: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            kill: 0.0,
            kill_mid_cell: 0.0,
            stall: 0.0,
            stall_ms: 2_000,
            delay: 0.0,
            delay_ms: 25,
            horizon: 4,
            incarnations: 1,
        }
    }
}

impl ChaosConfig {
    /// Parses a `key=value,...` spec, e.g.
    /// `kill-mid-cell=1.0,seed=7,stall=0.2,stall-ms=1500`.
    /// Unknown keys are rejected so typos fail loudly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec entry `{part}` is not key=value"))?;
            let fnum = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|e| format!("chaos spec `{key}`: {e}"))
            };
            let unum = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|e| format!("chaos spec `{key}`: {e}"))
            };
            match key {
                "seed" => cfg.seed = unum()?,
                "kill" => cfg.kill = fnum()?,
                "kill-mid-cell" => cfg.kill_mid_cell = fnum()?,
                "stall" => cfg.stall = fnum()?,
                "stall-ms" => cfg.stall_ms = unum()?,
                "delay" => cfg.delay = fnum()?,
                "delay-ms" => cfg.delay_ms = unum()?,
                "horizon" => cfg.horizon = unum()?,
                "incarnations" => {
                    cfg.incarnations = u32::try_from(unum()?)
                        .map_err(|_| "chaos spec `incarnations`: too large".to_owned())?;
                }
                other => return Err(format!("unknown chaos spec key `{other}`")),
            }
        }
        for (name, p) in [
            ("kill", cfg.kill),
            ("kill-mid-cell", cfg.kill_mid_cell),
            ("stall", cfg.stall),
            ("delay", cfg.delay),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("chaos spec `{name}` must be in [0, 1], got {p}"));
            }
        }
        Ok(cfg)
    }
}

/// A deterministic schedule of worker-process faults.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    cfg: ChaosConfig,
}

impl ChaosPlan {
    /// Builds the plan for a campaign configuration.
    #[must_use]
    pub fn new(cfg: ChaosConfig) -> Self {
        Self { cfg }
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// The action (if any) at one (worker, claim) coordinate — a pure
    /// function of the seed and the coordinates, like
    /// `faults::cell_seed` on the cell side.
    #[must_use]
    pub fn action(&self, worker: u64, claim: u64) -> Option<ChaosAction> {
        if claim >= self.cfg.horizon {
            return None;
        }
        let mix = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(worker.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(claim.wrapping_mul(0x100_0000_01B3))
            | 1;
        let mut rng = SmallRng::seed_from_u64(mix);
        // Fixed draw order keeps the schedule stable when one
        // probability changes.
        let draws = [
            rng.gen_range(0.0..1.0),
            rng.gen_range(0.0..1.0),
            rng.gen_range(0.0..1.0),
            rng.gen_range(0.0..1.0),
        ];
        if draws[0] < self.cfg.kill {
            Some(ChaosAction::KillOnClaim)
        } else if draws[1] < self.cfg.kill_mid_cell {
            Some(ChaosAction::KillMidCell)
        } else if draws[2] < self.cfg.stall {
            Some(ChaosAction::Stall {
                ms: self.cfg.stall_ms,
            })
        } else if draws[3] < self.cfg.delay {
            Some(ChaosAction::Delay {
                ms: self.cfg.delay_ms,
            })
        } else {
            None
        }
    }

    /// The full script for one worker incarnation: `(claim, action)`
    /// pairs over the chaos horizon, empty for incarnations past the
    /// configured chaotic count.
    #[must_use]
    pub fn script(&self, worker: u64, incarnation: u32) -> Vec<(u64, ChaosAction)> {
        if incarnation >= self.cfg.incarnations {
            return Vec::new();
        }
        // Distinct incarnations of the same ordinal get distinct
        // coordinates so a respawned chaotic worker does not replay
        // its predecessor's deaths verbatim.
        let w = worker.wrapping_add(u64::from(incarnation).wrapping_mul(0x51_7C_C1_B7));
        (0..self.cfg.horizon)
            .filter_map(|claim| self.action(w, claim).map(|a| (claim, a)))
            .collect()
    }
}

/// Renders a script as the compact `claim=action;...` form workers
/// receive on their command line.
#[must_use]
pub fn render_script(script: &[(u64, ChaosAction)]) -> String {
    script
        .iter()
        .map(|(claim, action)| format!("{claim}={action}"))
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses the `claim=action;...` form back into a script.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn parse_script(spec: &str) -> Result<Vec<(u64, ChaosAction)>, String> {
    let mut script = Vec::new();
    for part in spec.split(';').filter(|p| !p.is_empty()) {
        let (claim, action) = part
            .split_once('=')
            .ok_or_else(|| format!("chaos script entry `{part}` is not claim=action"))?;
        let claim: u64 = claim
            .parse()
            .map_err(|e| format!("chaos script claim `{claim}`: {e}"))?;
        let action = match action.split_once(':') {
            None if action == "kill" => ChaosAction::KillOnClaim,
            None if action == "kill-mid-cell" => ChaosAction::KillMidCell,
            Some(("stall", ms)) => ChaosAction::Stall {
                ms: ms
                    .parse()
                    .map_err(|e| format!("chaos script stall `{ms}`: {e}"))?,
            },
            Some(("delay", ms)) => ChaosAction::Delay {
                ms: ms
                    .parse()
                    .map_err(|e| format!("chaos script delay `{ms}`: {e}"))?,
            },
            _ => return Err(format!("unknown chaos script action `{action}`")),
        };
        script.push((claim, action));
    }
    Ok(script)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_coordinate_pure() {
        let cfg = ChaosConfig {
            seed: 7,
            kill: 0.3,
            kill_mid_cell: 0.3,
            stall: 0.2,
            delay: 0.2,
            horizon: 16,
            ..ChaosConfig::default()
        };
        let a = ChaosPlan::new(cfg);
        let b = ChaosPlan::new(cfg);
        for worker in 0..8 {
            for claim in 0..20 {
                assert_eq!(a.action(worker, claim), b.action(worker, claim));
            }
        }
        // Different seeds produce different schedules somewhere.
        let c = ChaosPlan::new(ChaosConfig { seed: 8, ..cfg });
        assert!((0..8).any(|w| (0..16).any(|i| a.action(w, i) != c.action(w, i))));
    }

    #[test]
    fn horizon_bounds_chaos_and_certainty_fires() {
        let plan = ChaosPlan::new(ChaosConfig {
            kill_mid_cell: 1.0,
            horizon: 2,
            ..ChaosConfig::default()
        });
        assert_eq!(plan.action(0, 0), Some(ChaosAction::KillMidCell));
        assert_eq!(plan.action(0, 1), Some(ChaosAction::KillMidCell));
        assert_eq!(plan.action(0, 2), None, "past the horizon runs clean");
    }

    #[test]
    fn incarnations_past_the_chaotic_count_run_clean() {
        let plan = ChaosPlan::new(ChaosConfig {
            kill: 1.0,
            incarnations: 1,
            ..ChaosConfig::default()
        });
        assert!(!plan.script(3, 0).is_empty());
        assert!(plan.script(3, 1).is_empty(), "respawn must run clean");
    }

    #[test]
    fn script_round_trips_through_the_cli_form() {
        let script = vec![
            (0, ChaosAction::KillMidCell),
            (1, ChaosAction::Stall { ms: 1500 }),
            (3, ChaosAction::Delay { ms: 20 }),
            (4, ChaosAction::KillOnClaim),
        ];
        let text = render_script(&script);
        assert_eq!(text, "0=kill-mid-cell;1=stall:1500;3=delay:20;4=kill");
        assert_eq!(parse_script(&text).unwrap(), script);
        assert_eq!(parse_script("").unwrap(), Vec::new());
        assert!(parse_script("0=explode").is_err());
        assert!(parse_script("x=kill").is_err());
    }

    #[test]
    fn config_parses_and_rejects_unknown_keys() {
        let cfg = ChaosConfig::parse("kill-mid-cell=1.0,seed=9,stall-ms=1500,horizon=3").unwrap();
        assert_eq!(cfg.seed, 9);
        assert!((cfg.kill_mid_cell - 1.0).abs() < f64::EPSILON);
        assert_eq!(cfg.stall_ms, 1500);
        assert_eq!(cfg.horizon, 3);
        assert!(ChaosConfig::parse("frobnicate=1").is_err());
        assert!(ChaosConfig::parse("kill=1.5").is_err());
        assert!(ChaosConfig::parse("kill").is_err());
    }
}
