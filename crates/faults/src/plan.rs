use perconf_bpred::{Snapshot, SnapshotError, StateDigest};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

/// Parameters of a deterministic fault-injection campaign.
///
/// Two independent Bernoulli processes are modelled, both driven from
/// the same seeded generator:
///
/// * `rate` — per-access probability of a *persistent* single-bit
///   upset in the wrapped structure's SRAM state (perceptron weights,
///   saturating counters, local-history registers, …);
/// * `history_rate` — per-lookup probability of a *transient* flip of
///   one bit of the in-flight global-history value, modelling a latch
///   strike on the history register rather than a table cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-access probability of flipping one stored state bit.
    pub rate: f64,
    /// Per-lookup probability of flipping one in-flight history bit.
    pub history_rate: f64,
    /// Seed for the fault sequence. The same seed replays the same
    /// faults (same access numbers, same bit addresses) exactly.
    pub seed: u64,
}

impl FaultConfig {
    /// A campaign injecting state faults at `rate` with `seed`, and no
    /// transient history faults.
    #[must_use]
    pub fn state_only(rate: f64, seed: u64) -> Self {
        Self {
            rate,
            history_rate: 0.0,
            seed,
        }
    }

    /// The no-fault campaign: wrappers built from this must be
    /// bit-identical passthroughs.
    #[must_use]
    pub fn none() -> Self {
        Self {
            rate: 0.0,
            history_rate: 0.0,
            seed: 0,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A deterministic, seeded schedule of single-bit faults.
///
/// Each call to [`next_fault`](Self::next_fault) advances the plan by
/// one access and — with the configured probability — yields the bit
/// address to upset. The sequence of (access number, bit address)
/// pairs is a pure function of the [`FaultConfig`], so any run can be
/// replayed exactly by reconstructing the plan from the same config.
///
/// When `rate` is exactly `0.0` the generator is never consulted, so a
/// zero-rate plan is free and the wrapping adapters degenerate to
/// passthroughs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SmallRng,
    rate: f64,
    history_rate: f64,
    accesses: u64,
    injected: u64,
}

impl FaultPlan {
    /// Builds the plan for a campaign configuration.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    #[must_use]
    pub fn new(cfg: &FaultConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.rate),
            "fault rate must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.history_rate),
            "history fault rate must be in [0,1]"
        );
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed),
            rate: cfg.rate,
            history_rate: cfg.history_rate,
            accesses: 0,
            injected: 0,
        }
    }

    /// Advances the plan by one structure access. Returns the state-bit
    /// address to flip (already reduced modulo `state_bits`), or `None`
    /// when this access is fault-free.
    pub fn next_fault(&mut self, state_bits: u64) -> Option<u64> {
        self.accesses += 1;
        if self.rate <= 0.0 || state_bits == 0 {
            return None;
        }
        if !self.rng.gen_bool(self.rate) {
            return None;
        }
        self.injected += 1;
        Some(self.rng.gen_range(0..state_bits))
    }

    /// Advances the plan by one lookup and returns the in-flight
    /// history value with at most one bit flipped (a transient fault
    /// that perturbs this lookup only, not the stored history).
    pub fn corrupt_history(&mut self, hist: u64) -> u64 {
        if self.history_rate <= 0.0 {
            return hist;
        }
        if !self.rng.gen_bool(self.history_rate) {
            return hist;
        }
        self.injected += 1;
        hist ^ (1u64 << self.rng.gen_range(0..64u32))
    }

    /// Number of accesses the plan has seen.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The configured per-access state-fault probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Snapshot for FaultPlan {
    fn save_state(&self) -> Value {
        Value::Object(vec![
            ("rng".into(), self.rng.state().to_value()),
            ("rate".into(), self.rate.to_value()),
            ("history_rate".into(), self.history_rate.to_value()),
            ("accesses".into(), self.accesses.to_value()),
            ("injected".into(), self.injected.to_value()),
        ])
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SnapshotError> {
        fn f<T: Deserialize>(state: &Value, name: &str) -> Result<T, SnapshotError> {
            serde::field(state, name).map_err(SnapshotError::from_de)
        }
        let rng_state: [u64; 4] = f(state, "rng")?;
        self.rate = f(state, "rate")?;
        self.history_rate = f(state, "history_rate")?;
        self.accesses = f(state, "accesses")?;
        self.injected = f(state, "injected")?;
        self.rng = SmallRng::from_state(rng_state);
        Ok(())
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for w in self.rng.state() {
            d.word(w);
        }
        d.float(self.rate)
            .float(self.history_rate)
            .word(self.accesses)
            .word(self.injected);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(cfg: &FaultConfig, accesses: u64, bits: u64) -> Vec<(u64, u64)> {
        let mut plan = FaultPlan::new(cfg);
        let mut out = Vec::new();
        for a in 0..accesses {
            if let Some(bit) = plan.next_fault(bits) {
                out.push((a, bit));
            }
        }
        out
    }

    #[test]
    fn same_seed_replays_identical_fault_sequence() {
        let cfg = FaultConfig::state_only(0.01, 0xDEAD_BEEF);
        let a = drain(&cfg, 50_000, 4096);
        let b = drain(&cfg, 50_000, 4096);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = drain(&FaultConfig::state_only(0.01, 1), 10_000, 4096);
        let b = drain(&FaultConfig::state_only(0.01, 2), 10_000, 4096);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_rate_never_fires_and_never_draws() {
        let mut plan = FaultPlan::new(&FaultConfig::none());
        for _ in 0..100_000 {
            assert_eq!(plan.next_fault(1 << 20), None);
        }
        assert_eq!(plan.injected(), 0);
        assert_eq!(plan.accesses(), 100_000);
    }

    #[test]
    fn rate_one_fires_every_access() {
        let mut plan = FaultPlan::new(&FaultConfig::state_only(1.0, 7));
        for _ in 0..1000 {
            let bit = plan.next_fault(64).unwrap();
            assert!(bit < 64);
        }
        assert_eq!(plan.injected(), 1000);
    }

    #[test]
    fn injection_count_tracks_rate() {
        let mut plan = FaultPlan::new(&FaultConfig::state_only(0.1, 99));
        for _ in 0..100_000 {
            plan.next_fault(1024);
        }
        let hits = plan.injected() as f64;
        assert!((8_000.0..12_000.0).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn zero_state_bits_is_a_noop() {
        let mut plan = FaultPlan::new(&FaultConfig::state_only(1.0, 3));
        assert_eq!(plan.next_fault(0), None);
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn history_corruption_flips_at_most_one_bit() {
        let cfg = FaultConfig {
            rate: 0.0,
            history_rate: 1.0,
            seed: 11,
        };
        let mut plan = FaultPlan::new(&cfg);
        for _ in 0..1000 {
            let h = plan.corrupt_history(0);
            assert_eq!(h.count_ones(), 1);
        }
    }

    #[test]
    fn zero_history_rate_passes_history_through() {
        let mut plan = FaultPlan::new(&FaultConfig::none());
        for h in [0u64, u64::MAX, 0xA5A5_5A5A] {
            assert_eq!(plan.corrupt_history(h), h);
        }
    }

    #[test]
    fn snapshot_resume_replays_remaining_fault_sequence() {
        let cfg = FaultConfig::state_only(0.05, 0xC0FFEE);
        let mut reference = FaultPlan::new(&cfg);
        for _ in 0..10_000 {
            reference.next_fault(4096);
        }
        let snap = reference.save_state();

        let mut resumed = FaultPlan::new(&cfg);
        resumed.restore_state(&snap).unwrap();
        assert_eq!(resumed.state_digest(), reference.state_digest());
        assert_eq!(resumed.accesses(), reference.accesses());
        assert_eq!(resumed.injected(), reference.injected());

        for _ in 0..10_000 {
            assert_eq!(reference.next_fault(4096), resumed.next_fault(4096));
        }
        assert_eq!(resumed.state_digest(), reference.state_digest());
    }

    #[test]
    fn digest_tracks_plan_progress() {
        let cfg = FaultConfig::state_only(0.5, 1);
        let mut plan = FaultPlan::new(&cfg);
        let d0 = plan.state_digest();
        plan.next_fault(64);
        assert_ne!(plan.state_digest(), d0);
    }
}
