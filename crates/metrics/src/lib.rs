//! Metrics for evaluating branch confidence estimators.
//!
//! This crate provides the measurement vocabulary used throughout the
//! reproduction of *Perceptron-Based Branch Confidence Estimation*
//! (Akkary et al., HPCA 2004):
//!
//! * [`ConfusionMatrix`] — the four-quadrant tally of (predicted
//!   correctly / mispredicted) × (high confidence / low confidence),
//!   from which the paper's two primary metrics are derived:
//!   **PVN** (predictive value of a negative test, "accuracy") and
//!   **Spec** (specificity, "mispredicted branch coverage").
//! * [`Histogram`] — fixed-bin-width density functions of perceptron
//!   outputs, used for Figures 4–7.
//! * [`Table`] — plain-text table rendering so every experiment driver
//!   can print rows in the same shape the paper reports.
//! * [`stats`] — means (arithmetic, weighted, geometric) used for the
//!   cross-benchmark averages the paper quotes.
//!
//! # Examples
//!
//! ```
//! use perconf_metrics::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new();
//! cm.record(true, true);   // mispredicted branch flagged low confidence
//! cm.record(false, false); // correctly predicted branch flagged high confidence
//! assert_eq!(cm.pvn(), 1.0);
//! assert_eq!(cm.spec(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confusion;
mod histogram;
pub mod stats;
pub mod svg;
mod table;

pub use confusion::ConfusionMatrix;
pub use histogram::{DensityPair, Histogram};
pub use table::{pct, Align, Table};
