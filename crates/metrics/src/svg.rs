//! Minimal self-contained SVG chart rendering, so the figure drivers
//! can emit actual plots (no plotting dependency needed offline).
//!
//! Two chart shapes cover the paper: [`density_svg`] renders a
//! [`DensityPair`](crate::DensityPair) as the dual-scale line plot of
//! Figures 4–7 (CB and MB each normalised to their own maximum, as in
//! the paper), and [`bars_svg`] renders the grouped per-benchmark bars
//! of Figures 8–9.

use crate::histogram::DensityPair;
use std::fmt::Write as _;

const W: f64 = 720.0;
const H: f64 = 400.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

fn header(title: &str) -> String {
    format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">
<style>text {{ font-family: sans-serif; font-size: 12px; }} .t {{ font-size: 15px; font-weight: bold; }}</style>
<rect width="{W}" height="{H}" fill="white"/>
<text class="t" x="{}" y="22" text-anchor="middle">{title}</text>
"#,
        W / 2.0
    )
}

fn polyline(points: &[(f64, f64)], color: &str) -> String {
    let pts: Vec<String> = points
        .iter()
        .map(|(x, y)| format!("{x:.1},{y:.1}"))
        .collect();
    format!(
        r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
        pts.join(" ")
    )
}

/// Renders a CB/MB output-density pair as an SVG line chart in the
/// style of the paper's Figures 4–7: each series normalised to its own
/// peak (the paper plots them on different scales because correct
/// predictions vastly outnumber mispredictions).
///
/// # Examples
///
/// ```
/// use perconf_metrics::{svg, DensityPair};
///
/// let mut d = DensityPair::new(-100, 100, 10);
/// d.add(-50, false);
/// d.add(40, true);
/// let s = svg::density_svg(&d, "Figure 4");
/// assert!(s.starts_with("<svg"));
/// assert!(s.contains("Figure 4"));
/// ```
#[must_use]
pub fn density_svg(d: &DensityPair, title: &str) -> String {
    let bins: Vec<(i64, u64, u64)> = d
        .correct
        .iter()
        .zip(d.mispredicted.iter())
        .map(|((edge, cb), (_, mb))| (edge, cb, mb))
        .collect();
    let mut out = header(title);
    if bins.is_empty() {
        out.push_str("</svg>\n");
        return out;
    }
    let (x0, x1) = (bins[0].0 as f64, bins[bins.len() - 1].0 as f64);
    let span = (x1 - x0).max(1.0);
    let max_cb = bins.iter().map(|b| b.1).max().unwrap_or(1).max(1) as f64;
    let max_mb = bins.iter().map(|b| b.2).max().unwrap_or(1).max(1) as f64;
    let plot_w = W - MARGIN_L - MARGIN_R;
    let plot_h = H - MARGIN_T - MARGIN_B;
    let sx = |v: f64| MARGIN_L + (v - x0) / span * plot_w;
    let sy = |frac: f64| MARGIN_T + (1.0 - frac) * plot_h;

    // Axes.
    let _ = writeln!(
        out,
        r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        H - MARGIN_B,
        W - MARGIN_R,
        H - MARGIN_B
    );
    let _ = writeln!(
        out,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
        H - MARGIN_B
    );
    // X ticks: five evenly spaced labels.
    for i in 0..=4 {
        let v = x0 + span * f64::from(i) / 4.0;
        let x = sx(v);
        let _ = writeln!(
            out,
            r#"<line x1="{x:.1}" y1="{}" x2="{x:.1}" y2="{}" stroke="black"/><text x="{x:.1}" y="{}" text-anchor="middle">{v:.0}</text>"#,
            H - MARGIN_B,
            H - MARGIN_B + 5.0,
            H - MARGIN_B + 20.0
        );
    }
    let _ = writeln!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle">perceptron output</text>"#,
        W / 2.0,
        H - 10.0
    );

    let cb_points: Vec<(f64, f64)> = bins
        .iter()
        .map(|&(e, cb, _)| (sx(e as f64), sy(cb as f64 / max_cb)))
        .collect();
    let mb_points: Vec<(f64, f64)> = bins
        .iter()
        .map(|&(e, _, mb)| (sx(e as f64), sy(mb as f64 / max_mb)))
        .collect();
    out.push_str(&polyline(&cb_points, "#1f77b4"));
    out.push('\n');
    out.push_str(&polyline(&mb_points, "#d62728"));
    out.push('\n');
    // Legend.
    let _ = writeln!(
        out,
        r##"<rect x="{}" y="{MARGIN_T}" width="12" height="3" fill="#1f77b4"/><text x="{}" y="{}">CB (correct, own scale)</text>"##,
        W - 230.0,
        W - 212.0,
        MARGIN_T + 5.0
    );
    let _ = writeln!(
        out,
        r##"<rect x="{}" y="{}" width="12" height="3" fill="#d62728"/><text x="{}" y="{}">MB (mispredicted, own scale)</text>"##,
        W - 230.0,
        MARGIN_T + 16.0,
        W - 212.0,
        MARGIN_T + 21.0
    );
    out.push_str("</svg>\n");
    out
}

/// Renders grouped per-category bars (e.g. Figures 8–9: speedup and
/// uop reduction per benchmark). Each entry is
/// `(label, [series values...])`; series share one y-axis, negative
/// values hang below the zero line.
///
/// # Panics
///
/// Panics if rows have different numbers of values than
/// `series_names`.
#[must_use]
pub fn bars_svg(title: &str, series_names: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = header(title);
    if rows.is_empty() || series_names.is_empty() {
        out.push_str("</svg>\n");
        return out;
    }
    for (_, vs) in rows {
        assert_eq!(vs.len(), series_names.len(), "row width mismatch");
    }
    let max = rows
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(1.0f64, |a, b| a.max(b.abs()))
        * 1.1;
    let plot_w = W - MARGIN_L - MARGIN_R;
    let plot_h = H - MARGIN_T - MARGIN_B;
    let zero_y = MARGIN_T + plot_h / 2.0;
    let sy = |v: f64| zero_y - v / max * (plot_h / 2.0);
    let colors = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd"];
    let group_w = plot_w / rows.len() as f64;
    let bar_w = (group_w * 0.8) / series_names.len() as f64;

    let _ = writeln!(
        out,
        r#"<line x1="{MARGIN_L}" y1="{zero_y:.1}" x2="{}" y2="{zero_y:.1}" stroke="black"/>"#,
        W - MARGIN_R
    );
    for (g, (label, vs)) in rows.iter().enumerate() {
        let gx = MARGIN_L + group_w * (g as f64 + 0.1);
        for (si, &v) in vs.iter().enumerate() {
            let x = gx + bar_w * si as f64;
            let y = sy(v.max(0.0));
            let h = (sy(0.0) - sy(v.abs())).abs();
            let _ = writeln!(
                out,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{h:.1}" fill="{}"/>"#,
                bar_w * 0.9,
                colors[si % colors.len()]
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{}" text-anchor="middle" transform="rotate(45 {:.1} {})">{label}</text>"#,
            gx + group_w * 0.4,
            H - MARGIN_B + 24.0,
            gx + group_w * 0.4,
            H - MARGIN_B + 24.0
        );
    }
    for (si, name) in series_names.iter().enumerate() {
        let y = MARGIN_T + 14.0 * si as f64;
        let _ = writeln!(
            out,
            r#"<rect x="{}" y="{y:.1}" width="12" height="8" fill="{}"/><text x="{}" y="{:.1}">{name}</text>"#,
            W - 200.0,
            colors[si % colors.len()],
            W - 182.0,
            y + 8.0
        );
    }
    // Y extremes.
    let _ = writeln!(
        out,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{max:.0}</text><text x="{:.1}" y="{:.1}" text-anchor="end">0</text>"#,
        MARGIN_L - 6.0,
        MARGIN_T + 10.0,
        MARGIN_L - 6.0,
        zero_y + 4.0
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_svg_is_well_formed() {
        let mut d = DensityPair::new(-50, 50, 10);
        for i in -5..5 {
            d.add(i * 10, i > 2);
        }
        let s = density_svg(&d, "test-density");
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert_eq!(s.matches("<polyline").count(), 2);
        assert!(s.contains("test-density"));
    }

    #[test]
    fn empty_density_renders_without_panic() {
        let d = DensityPair::new(0, 10, 10);
        let s = density_svg(&d, "empty");
        assert!(s.contains("</svg>"));
    }

    #[test]
    fn bars_svg_draws_one_rect_per_value() {
        let rows = vec![
            ("a".to_owned(), vec![1.0, -2.0]),
            ("b".to_owned(), vec![3.0, 4.0]),
        ];
        let s = bars_svg("bars", &["x", "y"], &rows);
        // 4 data bars + 2 legend swatches.
        assert_eq!(s.matches("<rect").count(), 4 + 2 + 1); // +1 background
        assert!(s.contains("bars"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_bar_rows_panic() {
        let rows = vec![("a".to_owned(), vec![1.0])];
        let _ = bars_svg("t", &["x", "y"], &rows);
    }
}
