use serde::{Deserialize, Serialize};

/// Four-quadrant tally of branch-prediction outcome versus assigned
/// confidence, following the terminology of Grunwald et al. and the
/// HPCA 2004 paper.
///
/// A confidence estimator performs a *negative test*: flagging a branch
/// as **low confidence** asserts the prediction is likely wrong. The
/// quadrants are:
///
/// | | high confidence | low confidence |
/// |---|---|---|
/// | **correctly predicted** | `correct_high` | `correct_low` |
/// | **mispredicted** | `miss_high` | `miss_low` |
///
/// From these the paper's two primary metrics are derived:
///
/// * [`pvn`](Self::pvn) — *predictive value of a negative test*,
///   `miss_low / (miss_low + correct_low)`: of the branches flagged low
///   confidence, how many really were mispredicted. The paper calls
///   this **accuracy**.
/// * [`spec`](Self::spec) — *specificity*,
///   `miss_low / (miss_low + miss_high)`: of the mispredicted branches,
///   how many were flagged low confidence. The paper calls this
///   **coverage**.
///
/// # Examples
///
/// ```
/// use perconf_metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new();
/// for _ in 0..90 {
///     cm.record(false, false); // correct, high confidence
/// }
/// for _ in 0..6 {
///     cm.record(true, true); // mispredicted, low confidence
/// }
/// for _ in 0..4 {
///     cm.record(false, true); // correct but flagged low
/// }
/// assert!((cm.pvn() - 0.6).abs() < 1e-12);
/// assert_eq!(cm.spec(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Correctly predicted branches assigned high confidence.
    pub correct_high: u64,
    /// Correctly predicted branches assigned low confidence (false alarms).
    pub correct_low: u64,
    /// Mispredicted branches assigned high confidence (missed coverage).
    pub miss_high: u64,
    /// Mispredicted branches assigned low confidence (hits).
    pub miss_low: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one branch: whether its prediction turned out wrong
    /// (`mispredicted`) and whether the estimator had flagged it
    /// low confidence (`low_confidence`).
    pub fn record(&mut self, mispredicted: bool, low_confidence: bool) {
        match (mispredicted, low_confidence) {
            (false, false) => self.correct_high += 1,
            (false, true) => self.correct_low += 1,
            (true, false) => self.miss_high += 1,
            (true, true) => self.miss_low += 1,
        }
    }

    /// Total number of branches recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.correct_high + self.correct_low + self.miss_high + self.miss_low
    }

    /// Total number of mispredicted branches recorded.
    #[must_use]
    pub fn mispredicted(&self) -> u64 {
        self.miss_high + self.miss_low
    }

    /// Total number of branches flagged low confidence.
    #[must_use]
    pub fn flagged_low(&self) -> u64 {
        self.correct_low + self.miss_low
    }

    /// Predictive value of a negative test — the paper's **accuracy**
    /// metric: probability that a low-confidence flag is correct.
    ///
    /// Returns 0.0 when no branch was flagged low confidence.
    #[must_use]
    pub fn pvn(&self) -> f64 {
        ratio(self.miss_low, self.flagged_low())
    }

    /// Specificity — the paper's **coverage** metric: fraction of all
    /// mispredicted branches that were flagged low confidence.
    ///
    /// Returns 0.0 when no branch was mispredicted.
    #[must_use]
    pub fn spec(&self) -> f64 {
        ratio(self.miss_low, self.mispredicted())
    }

    /// Sensitivity: fraction of correctly predicted branches assigned
    /// high confidence.
    #[must_use]
    pub fn sens(&self) -> f64 {
        ratio(self.correct_high, self.correct_high + self.correct_low)
    }

    /// Predictive value of a positive test: probability that a
    /// high-confidence flag is correct.
    #[must_use]
    pub fn pvp(&self) -> f64 {
        ratio(self.correct_high, self.correct_high + self.miss_high)
    }

    /// Branch misprediction rate over all recorded branches.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        ratio(self.mispredicted(), self.total())
    }

    /// Merges another matrix into this one (e.g. accumulating across
    /// benchmarks).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.correct_high += other.correct_high;
        self.correct_low += other.correct_low;
        self.miss_high += other.miss_high;
        self.miss_low += other.miss_low;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_all_zero() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.pvn(), 0.0);
        assert_eq!(cm.spec(), 0.0);
        assert_eq!(cm.sens(), 0.0);
        assert_eq!(cm.pvp(), 0.0);
        assert_eq!(cm.misprediction_rate(), 0.0);
    }

    #[test]
    fn quadrants_route_correctly() {
        let mut cm = ConfusionMatrix::new();
        cm.record(false, false);
        cm.record(false, true);
        cm.record(true, false);
        cm.record(true, true);
        assert_eq!(cm.correct_high, 1);
        assert_eq!(cm.correct_low, 1);
        assert_eq!(cm.miss_high, 1);
        assert_eq!(cm.miss_low, 1);
        assert_eq!(cm.total(), 4);
    }

    #[test]
    fn perfect_estimator_has_unit_metrics() {
        let mut cm = ConfusionMatrix::new();
        for _ in 0..10 {
            cm.record(true, true);
            cm.record(false, false);
        }
        assert_eq!(cm.pvn(), 1.0);
        assert_eq!(cm.spec(), 1.0);
        assert_eq!(cm.sens(), 1.0);
        assert_eq!(cm.pvp(), 1.0);
        assert_eq!(cm.misprediction_rate(), 0.5);
    }

    #[test]
    fn always_low_estimator_has_full_coverage_and_pvn_equal_to_missrate() {
        let mut cm = ConfusionMatrix::new();
        for i in 0..100 {
            cm.record(i % 10 == 0, true);
        }
        assert_eq!(cm.spec(), 1.0);
        assert!((cm.pvn() - 0.1).abs() < 1e-12);
        assert_eq!(cm.sens(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::new();
        a.record(true, true);
        let mut b = ConfusionMatrix::new();
        b.record(false, false);
        b.record(true, false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.miss_high, 1);
        assert_eq!(a.correct_high, 1);
        assert_eq!(a.miss_low, 1);
    }

    #[test]
    fn pvn_and_spec_match_hand_computation() {
        let cm = ConfusionMatrix {
            correct_high: 850,
            correct_low: 100,
            miss_high: 10,
            miss_low: 40,
        };
        assert!((cm.pvn() - 40.0 / 140.0).abs() < 1e-12);
        assert!((cm.spec() - 40.0 / 50.0).abs() < 1e-12);
        assert!((cm.misprediction_rate() - 0.05).abs() < 1e-12);
    }
}
