/// Column alignment for [`Table`] rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Align {
    /// Left-aligned (default; used for name columns).
    #[default]
    Left,
    /// Right-aligned (used for numeric columns).
    Right,
}

/// Minimal plain-text table builder used by every experiment driver so
/// reproduced tables print in a uniform shape.
///
/// # Examples
///
/// ```
/// use perconf_metrics::{Align, Table};
///
/// let mut t = Table::new(vec!["bench".into(), "MPKu".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["gcc".into(), "2.3".into()]);
/// let s = t.render();
/// assert!(s.contains("gcc"));
/// assert!(s.contains("MPKu"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    #[must_use]
    pub fn with_headers(headers: &[&str]) -> Self {
        Self::new(headers.iter().map(|s| (*s).to_owned()).collect())
    }

    /// Sets the alignment of column `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn align(&mut self, idx: usize, align: Align) -> &mut Self {
        self.aligns[idx] = align;
        self
    }

    /// Right-aligns every column except the first (the common shape for
    /// benchmark tables).
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        render_row(&mut out, &self.headers, &widths, &self.aligns);
        let rule_len = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row, &widths, &self.aligns);
        }
        out
    }

    /// Renders the table as CSV (headers + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

fn render_row(out: &mut String, cells: &[String], widths: &[usize], aligns: &[Align]) {
    let mut first = true;
    for ((cell, &w), &a) in cells.iter().zip(widths).zip(aligns) {
        if !first {
            out.push_str("   ");
        }
        first = false;
        match a {
            Align::Left => out.push_str(&format!("{cell:<w$}")),
            Align::Right => out.push_str(&format!("{cell:>w$}")),
        }
    }
    // Trim trailing padding for clean diffs.
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.083` →
/// `"8.3"`.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_rule_and_rows() {
        let mut t = Table::with_headers(&["a", "bb"]);
        t.row(vec!["x".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn right_alignment_pads_left() {
        let mut t = Table::with_headers(&["name", "val"]);
        t.align(1, Align::Right);
        t.row(vec!["x".into(), "7".into()]);
        let s = t.render();
        assert!(s.lines().nth(2).unwrap().ends_with('7'));
    }

    #[test]
    fn numeric_right_aligns_all_but_first() {
        let mut t = Table::with_headers(&["n", "a", "b"]);
        t.numeric();
        assert_eq!(t.aligns, vec![Align::Left, Align::Right, Align::Right]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::with_headers(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::with_headers(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn pct_formats_one_decimal() {
        assert_eq!(pct(0.083), "8.3");
        assert_eq!(pct(1.0), "100.0");
        assert_eq!(pct(-0.02), "-2.0");
    }
}
