use serde::{Deserialize, Serialize};

/// Fixed-bin-width histogram over a closed integer range, used to plot
/// the perceptron-output density functions of Figures 4–7.
///
/// Samples outside the configured range are clamped into the first or
/// last bin so no observation is silently dropped.
///
/// # Examples
///
/// ```
/// use perconf_metrics::Histogram;
///
/// let mut h = Histogram::new(-100, 100, 10);
/// h.add(-95);
/// h.add(0);
/// h.add(0);
/// h.add(250); // clamped into the last bin
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_containing(0).1, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    lo: i64,
    hi: i64,
    bin_width: u32,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi)` with bins of `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bin_width == 0`.
    #[must_use]
    pub fn new(lo: i64, hi: i64, bin_width: u32) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bin_width > 0, "bin width must be positive");
        let span = (hi - lo) as u64;
        let n = span.div_ceil(u64::from(bin_width)) as usize;
        Self {
            lo,
            hi,
            bin_width,
            bins: vec![0; n],
            count: 0,
        }
    }

    /// Adds one sample, clamping out-of-range values into the edge bins.
    pub fn add(&mut self, value: i64) {
        let idx = self.bin_index(value);
        self.bins[idx] += 1;
        self.count += 1;
    }

    fn bin_index(&self, value: i64) -> usize {
        let v = value.clamp(self.lo, self.hi - 1);
        ((v - self.lo) as u64 / u64::from(self.bin_width)) as usize
    }

    /// Total number of samples added.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of bins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Returns `true` if no samples have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns `(bin_lower_edge, count)` for the bin containing `value`.
    #[must_use]
    pub fn bin_containing(&self, value: i64) -> (i64, u64) {
        let idx = self.bin_index(value);
        (self.edge(idx), self.bins[idx])
    }

    fn edge(&self, idx: usize) -> i64 {
        self.lo + idx as i64 * i64::from(self.bin_width)
    }

    /// Iterates over `(bin_lower_edge, count)` pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.edge(i), c))
    }

    /// Sum of counts in bins whose lower edge lies in `[from, to)`.
    #[must_use]
    pub fn mass_in(&self, from: i64, to: i64) -> u64 {
        self.iter()
            .filter(|&(edge, _)| edge >= from && edge < to)
            .map(|(_, c)| c)
            .sum()
    }

    /// Lower edge of the fullest bin, or `None` when empty.
    #[must_use]
    pub fn mode(&self) -> Option<i64> {
        if self.is_empty() {
            return None;
        }
        self.iter().max_by_key(|&(_, c)| c).map(|(e, _)| e)
    }

    /// Mean of the samples, approximated by bin centres.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let half = f64::from(self.bin_width) / 2.0;
        let sum: f64 = self.iter().map(|(e, c)| (e as f64 + half) * c as f64).sum();
        Some(sum / self.count as f64)
    }

    /// Renders a CSV body with `edge,count` lines.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin,count\n");
        for (edge, c) in self.iter() {
            out.push_str(&format!("{edge},{c}\n"));
        }
        out
    }
}

/// A pair of histograms over the same range: one for correctly
/// predicted branches (CB) and one for mispredicted branches (MB), as
/// plotted in Figures 4–7 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DensityPair {
    /// Density of perceptron outputs for correctly predicted branches.
    pub correct: Histogram,
    /// Density of perceptron outputs for mispredicted branches.
    pub mispredicted: Histogram,
}

impl DensityPair {
    /// Creates an empty pair over `[lo, hi)` with the given bin width.
    #[must_use]
    pub fn new(lo: i64, hi: i64, bin_width: u32) -> Self {
        Self {
            correct: Histogram::new(lo, hi, bin_width),
            mispredicted: Histogram::new(lo, hi, bin_width),
        }
    }

    /// Records one perceptron output sample.
    pub fn add(&mut self, output: i64, mispredicted: bool) {
        if mispredicted {
            self.mispredicted.add(output);
        } else {
            self.correct.add(output);
        }
    }

    /// Renders a CSV body with `edge,correct,mispredicted` lines.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin,correct,mispredicted\n");
        for ((edge, cb), (_, mb)) in self.correct.iter().zip(self.mispredicted.iter()) {
            out.push_str(&format!("{edge},{cb},{mb}\n"));
        }
        out
    }

    /// Renders a two-column ASCII density plot, each column normalised
    /// to its own maximum (the paper plots CB and MB on different
    /// scales for the same reason: MB counts are far smaller).
    #[must_use]
    pub fn to_ascii(&self, width: usize) -> String {
        let max_cb = self
            .correct
            .iter()
            .map(|(_, c)| c)
            .max()
            .unwrap_or(0)
            .max(1);
        let max_mb = self
            .mispredicted
            .iter()
            .map(|(_, c)| c)
            .max()
            .unwrap_or(0)
            .max(1);
        let mut out = format!(
            "{:>8} | {:<w$} | {:<w$}\n",
            "bin",
            "CB (correctly predicted)",
            "MB (mispredicted)",
            w = width
        );
        for ((edge, cb), (_, mb)) in self.correct.iter().zip(self.mispredicted.iter()) {
            let cbar = "#".repeat((cb * width as u64 / max_cb) as usize);
            let mbar = "#".repeat((mb * width as u64 / max_mb) as usize);
            out.push_str(&format!("{edge:>8} | {cbar:<w$} | {mbar:<w$}\n", w = width));
        }
        out
    }

    /// Ratio of mispredicted to correct mass in `[from, to)`; used to
    /// identify the reversal / gating / high-confidence regions of
    /// Figure 5. Returns `None` if there is no correct mass there.
    #[must_use]
    pub fn mb_cb_ratio(&self, from: i64, to: i64) -> Option<f64> {
        let cb = self.correct.mass_in(from, to);
        let mb = self.mispredicted.mass_in(from, to);
        if cb == 0 {
            None
        } else {
            Some(mb as f64 / cb as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_range() {
        let h = Histogram::new(-50, 50, 10);
        assert_eq!(h.len(), 10);
        let h = Histogram::new(-50, 55, 10);
        assert_eq!(h.len(), 11);
    }

    #[test]
    fn out_of_range_samples_clamp_to_edges() {
        let mut h = Histogram::new(0, 100, 10);
        h.add(-1000);
        h.add(1000);
        assert_eq!(h.bin_containing(0).1, 1);
        assert_eq!(h.bin_containing(99).1, 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn negative_edges_bin_correctly() {
        let mut h = Histogram::new(-30, 30, 10);
        h.add(-30);
        h.add(-21);
        h.add(-1);
        h.add(0);
        assert_eq!(h.bin_containing(-30).0, -30);
        assert_eq!(h.bin_containing(-30).1, 2);
        assert_eq!(h.bin_containing(-1).0, -10);
        assert_eq!(h.bin_containing(-1).1, 1);
        assert_eq!(h.bin_containing(0).0, 0);
        assert_eq!(h.bin_containing(0).1, 1);
    }

    #[test]
    fn mass_in_sums_expected_bins() {
        let mut h = Histogram::new(0, 40, 10);
        for v in [1, 11, 12, 25, 39] {
            h.add(v);
        }
        assert_eq!(h.mass_in(0, 20), 3);
        assert_eq!(h.mass_in(20, 40), 2);
        assert_eq!(h.mass_in(0, 40), 5);
    }

    #[test]
    fn mode_and_mean() {
        let mut h = Histogram::new(0, 30, 10);
        h.add(5);
        h.add(15);
        h.add(16);
        assert_eq!(h.mode(), Some(10));
        let m = h.mean().unwrap();
        assert!((m - (5.0 + 15.0 + 15.0) / 3.0).abs() < 1e-9);
        assert_eq!(Histogram::new(0, 10, 1).mean(), None);
    }

    #[test]
    fn density_pair_routes_by_outcome() {
        let mut d = DensityPair::new(-10, 10, 5);
        d.add(-7, false);
        d.add(3, true);
        d.add(3, true);
        assert_eq!(d.correct.count(), 1);
        assert_eq!(d.mispredicted.count(), 2);
        assert_eq!(d.mb_cb_ratio(-10, 10), Some(2.0));
        assert_eq!(d.mb_cb_ratio(0, 10), None); // no CB mass there
    }

    #[test]
    fn csv_round_shape() {
        let mut d = DensityPair::new(0, 20, 10);
        d.add(5, false);
        d.add(15, true);
        let csv = d.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "bin,correct,mispredicted");
        assert_eq!(lines[1], "0,1,0");
        assert_eq!(lines[2], "10,0,1");
    }

    #[test]
    fn ascii_render_has_one_row_per_bin() {
        let mut d = DensityPair::new(0, 30, 10);
        d.add(5, false);
        let s = d.to_ascii(20);
        assert_eq!(s.trim().lines().count(), 4); // header + 3 bins
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = Histogram::new(5, 5, 1);
    }
}
