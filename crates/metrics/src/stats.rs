//! Summary statistics used for the paper's cross-benchmark averages.

/// Arithmetic mean. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(perconf_metrics::stats::mean(&[1.0, 3.0]), Some(2.0));
/// assert_eq!(perconf_metrics::stats::mean(&[]), None);
/// ```
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Weighted arithmetic mean; `None` if the inputs are empty, of
/// different lengths, or the weights sum to zero.
///
/// The paper's "weighted average" bars in Figures 8–9 weight each
/// benchmark by its share of executed uops.
#[must_use]
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ws.len() {
        return None;
    }
    let wsum: f64 = ws.iter().sum();
    if wsum == 0.0 {
        return None;
    }
    Some(xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / wsum)
}

/// Geometric mean of strictly positive values; `None` if empty or any
/// value is non-positive.
#[must_use]
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Harmonic mean of strictly positive values; `None` if empty or any
/// value is non-positive. Appropriate for averaging rates such as IPC.
#[must_use]
pub fn harmonic_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some(xs.len() as f64 / xs.iter().map(|&x| 1.0 / x).sum::<f64>())
}

/// Sample standard deviation; `None` with fewer than two samples.
///
/// # Examples
///
/// ```
/// let sd = perconf_metrics::stats::stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert!((sd - 2.138).abs() < 0.01);
/// ```
#[must_use]
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Relative change from `base` to `new`, as a fraction: positive when
/// `new > base`. Returns 0.0 when `base` is 0.
///
/// Used for speedups (`rel_change(base_cycles, new_cycles)` negated) and
/// uop reductions.
#[must_use]
pub fn rel_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0, 6.0]), Some(4.0));
    }

    #[test]
    fn weighted_mean_weights_dominate() {
        let m = weighted_mean(&[1.0, 100.0], &[0.0, 1.0]).unwrap();
        assert_eq!(m, 100.0);
        assert_eq!(weighted_mean(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(weighted_mean(&[1.0], &[0.0]), None);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn harmonic_basic() {
        let h = harmonic_mean(&[1.0, 1.0]).unwrap();
        assert!((h - 1.0).abs() < 1e-12);
        let h = harmonic_mean(&[2.0, 6.0]).unwrap();
        assert!((h - 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[-1.0]), None);
    }

    #[test]
    fn stddev_matches_reference() {
        assert_eq!(stddev(&[1.0]), None);
        let sd = stddev(&[1.0, 1.0, 1.0]).unwrap();
        assert!(sd.abs() < 1e-12);
        let sd = stddev(&[1.0, 3.0]).unwrap();
        assert!((sd - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn rel_change_signs() {
        assert!((rel_change(100.0, 90.0) + 0.1).abs() < 1e-12);
        assert!((rel_change(100.0, 110.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_change(0.0, 5.0), 0.0);
    }
}
